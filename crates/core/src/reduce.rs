//! Exact reliability-preserving graph reductions.
//!
//! Classic preprocessing from the device-network reliability literature
//! the paper builds on (Aggarwal et al. [3]; also the mechanism behind
//! ProbTree's lossless bags): repeatedly apply local rewrites that leave
//! `R(s, t)` unchanged while shrinking the graph, then hand the reduced
//! graph to any estimator.
//!
//! Implemented rewrites (all exact for s-t queries):
//!
//! * **Parallel reduction** — duplicate directed edges `u -> v` merge
//!   into one with `1 - (1-p1)(1-p2)` (handled by the builder's
//!   `CombineOr`, re-applied after other rewrites create duplicates).
//! * **Series reduction** — a node `w` (not `s`/`t`) whose only in-edge
//!   is `u -> w` and only out-edge is `w -> v` collapses into
//!   `u -> v` with `p1 * p2`. Requires `w`'s in/out degree to be exactly
//!   1 each, and `u != w != v`.
//! * **Dead-end pruning** — nodes that cannot lie on any `s -> t` path
//!   (not reachable from `s`, or `t` not reachable from them over the
//!   certain topology) are dropped with all their edges. This is exact:
//!   no possible world routes through them.
//!
//! The result is a [`ReducedQuery`]: a smaller graph plus the relabeled
//! endpoints, with `R` provably identical. Property tests check
//! `exact(original) == exact(reduced)` on random graphs.

use relcomp_ugraph::traversal::{bfs_reaches, BfsWorkspace};
use relcomp_ugraph::{DuplicatePolicy, GraphBuilder, NodeId, Probability, UncertainGraph};

/// A reduced s-t query instance.
pub struct ReducedQuery {
    /// The reduced graph.
    pub graph: UncertainGraph,
    /// `s` in the reduced graph.
    pub s: NodeId,
    /// `t` in the reduced graph.
    pub t: NodeId,
    /// Nodes of the original graph that survived, indexed by reduced id.
    pub kept: Vec<NodeId>,
    /// How many series contractions were applied.
    pub series_contractions: usize,
}

impl ReducedQuery {
    /// Reduction ratio in edges (1.0 = no reduction).
    pub fn edge_ratio(&self, original: &UncertainGraph) -> f64 {
        if original.num_edges() == 0 {
            return 1.0;
        }
        self.graph.num_edges() as f64 / original.num_edges() as f64
    }
}

/// Apply dead-end pruning + series + parallel reductions to fixpoint.
pub fn reduce_for_query(graph: &UncertainGraph, s: NodeId, t: NodeId) -> ReducedQuery {
    assert!(
        graph.contains_node(s) && graph.contains_node(t),
        "query nodes out of range"
    );

    // Phase 1: relevance pruning over the certain topology.
    let forward = reachable_from(graph, s, /*forward=*/ true);
    let backward = reachable_from(graph, t, /*forward=*/ false);
    // Keep an edge only if both endpoints can lie on an s -> t path:
    // reachable from s AND able to reach t over the certain topology.
    let mut edges: Vec<(NodeId, NodeId, f64)> = graph
        .edges()
        .filter(|&(_, u, v, _)| {
            forward[u.index()] && backward[u.index()] && forward[v.index()] && backward[v.index()]
        })
        .map(|(_, u, v, p)| (u, v, p.value()))
        .collect();

    // Phase 2: series contraction to fixpoint on the edge list.
    let mut series_contractions = 0usize;
    loop {
        // Recompute degrees over current edge list.
        let mut in_deg: std::collections::HashMap<NodeId, usize> = Default::default();
        let mut out_deg: std::collections::HashMap<NodeId, usize> = Default::default();
        for &(u, v, _) in &edges {
            *out_deg.entry(u).or_default() += 1;
            *in_deg.entry(v).or_default() += 1;
        }
        // Find a contractible node: in = out = 1, not s/t, no self-loop.
        let mut victim: Option<NodeId> = None;
        for (&w, &din) in &in_deg {
            if w == s || w == t || din != 1 {
                continue;
            }
            if out_deg.get(&w).copied().unwrap_or(0) != 1 {
                continue;
            }
            let inc = edges
                .iter()
                .find(|&&(_, v, _)| v == w)
                .expect("in-degree 1");
            let out = edges
                .iter()
                .find(|&&(u, _, _)| u == w)
                .expect("out-degree 1");
            if inc.0 != w && out.1 != w && inc.0 != out.1 {
                victim = Some(w);
                break;
            }
        }
        let Some(w) = victim else { break };
        let (u, _, p1) = *edges.iter().find(|&&(_, v, _)| v == w).expect("in edge");
        let (_, v, p2) = *edges.iter().find(|&&(uu, _, _)| uu == w).expect("out edge");
        edges.retain(|&(a, b, _)| a != w && b != w);
        edges.push((u, v, p1 * p2));
        series_contractions += 1;
    }

    // Phase 3: relabel + parallel-merge through the builder.
    let mut kept: Vec<NodeId> = Vec::new();
    let mut map: std::collections::HashMap<NodeId, NodeId> = Default::default();
    let mut intern = |node: NodeId, kept: &mut Vec<NodeId>| -> NodeId {
        *map.entry(node).or_insert_with(|| {
            let local = NodeId::from_index(kept.len());
            kept.push(node);
            local
        })
    };
    let rs = intern(s, &mut kept);
    let rt = intern(t, &mut kept);
    let locals: Vec<(NodeId, NodeId, f64)> = edges
        .iter()
        .map(|&(u, v, p)| (intern(u, &mut kept), intern(v, &mut kept), p))
        .collect();
    let mut b = GraphBuilder::new(kept.len())
        .with_edge_capacity(locals.len())
        .duplicate_policy(DuplicatePolicy::CombineOr);
    for (u, v, p) in locals {
        b.add_edge_prob(u, v, Probability::clamped(p))
            .expect("validated");
    }
    ReducedQuery {
        graph: b.build(),
        s: rs,
        t: rt,
        kept,
        series_contractions,
    }
}

/// Reachability sets over the certain topology (forward from `s`, or
/// backward to `t` using in-edges).
fn reachable_from(graph: &UncertainGraph, start: NodeId, forward: bool) -> Vec<bool> {
    let n = graph.num_nodes();
    let mut seen = vec![false; n];
    seen[start.index()] = true;
    let mut stack = vec![start];
    while let Some(v) = stack.pop() {
        if forward {
            for (_, w) in graph.out_edges(v) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    stack.push(w);
                }
            }
        } else {
            for (_, u) in graph.in_edges(v) {
                if !seen[u.index()] {
                    seen[u.index()] = true;
                    stack.push(u);
                }
            }
        }
    }
    seen
}

/// Sanity helper used by tests: does the reduced instance still connect
/// s to t in the certain topology iff the original does?
pub fn certain_connectivity_preserved(
    original: &UncertainGraph,
    s: NodeId,
    t: NodeId,
    reduced: &ReducedQuery,
) -> bool {
    let mut ws = BfsWorkspace::new(original.num_nodes());
    let before = bfs_reaches(original, s, t, &mut ws, |_| true);
    let mut ws = BfsWorkspace::new(reduced.graph.num_nodes());
    let after = bfs_reaches(&reduced.graph, reduced.s, reduced.t, &mut ws, |_| true);
    before == after
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_reliability;

    #[test]
    fn series_chain_collapses_to_single_edge() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.9).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.8).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.7).unwrap();
        let g = b.build();
        let red = reduce_for_query(&g, NodeId(0), NodeId(3));
        assert_eq!(red.graph.num_edges(), 1);
        assert_eq!(red.series_contractions, 2);
        let p = red.graph.prob(relcomp_ugraph::EdgeId(0)).value();
        assert!((p - 0.9 * 0.8 * 0.7).abs() < 1e-12);
    }

    #[test]
    fn parallel_paths_merge_after_series() {
        // Diamond: both 2-edge paths contract to single edges, then merge.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.5).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.5).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.5).unwrap();
        let g = b.build();
        let exact = exact_reliability(&g, NodeId(0), NodeId(3));
        let red = reduce_for_query(&g, NodeId(0), NodeId(3));
        assert_eq!(red.graph.num_edges(), 1);
        let p = red.graph.prob(relcomp_ugraph::EdgeId(0)).value();
        assert!((p - exact).abs() < 1e-12, "reduced to {p}, exact {exact}");
    }

    #[test]
    fn irrelevant_branches_are_pruned() {
        // 0 -> 1 -> 2 plus a dangling branch 1 -> 3 -> 4 that cannot reach
        // t = 2.
        let mut b = GraphBuilder::new(5);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.5).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.5).unwrap();
        b.add_edge(NodeId(3), NodeId(4), 0.5).unwrap();
        let g = b.build();
        let red = reduce_for_query(&g, NodeId(0), NodeId(2));
        assert!(red.graph.num_nodes() <= 3);
        let exact_red = exact_reliability(&red.graph, red.s, red.t);
        assert!((exact_red - 0.25).abs() < 1e-12);
    }

    #[test]
    fn reduction_preserves_exact_reliability_on_random_graphs() {
        use rand::SeedableRng;
        use relcomp_ugraph::generators::erdos_renyi;
        use relcomp_ugraph::probmodel::{Direction, ProbModel};
        for seed in 0..10u64 {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let pairs = erdos_renyi(8, 11, &mut rng);
            let g = ProbModel::UniformChoice {
                choices: vec![0.3, 0.7],
            }
            .apply(8, &pairs, Direction::RandomOriented, &mut rng);
            if g.num_edges() > 22 {
                continue;
            }
            let (s, t) = (NodeId(0), NodeId(7));
            let before = exact_reliability(&g, s, t);
            let red = reduce_for_query(&g, s, t);
            assert!(red.graph.num_edges() <= g.num_edges());
            if red.graph.num_edges() <= 24 {
                let after = exact_reliability(&red.graph, red.s, red.t);
                assert!(
                    (before - after).abs() < 1e-9,
                    "seed {seed}: {before} vs {after}"
                );
            }
            assert!(certain_connectivity_preserved(&g, s, t, &red));
        }
    }

    #[test]
    fn unreachable_target_reduces_to_empty() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(1), NodeId(0), 0.5).unwrap();
        let g = b.build();
        let red = reduce_for_query(&g, NodeId(0), NodeId(2));
        assert_eq!(red.graph.num_edges(), 0);
        assert_eq!(exact_reliability(&red.graph, red.s, red.t), 0.0);
    }

    #[test]
    fn endpoints_never_contracted() {
        // s has in/out degree 1 but must survive.
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.5).unwrap();
        b.add_edge(NodeId(2), NodeId(0), 0.5).unwrap();
        let g = b.build();
        let red = reduce_for_query(&g, NodeId(0), NodeId(2));
        assert!(red.kept.contains(&NodeId(0)));
        assert!(red.kept.contains(&NodeId(2)));
        let before = exact_reliability(&g, NodeId(0), NodeId(2));
        let after = exact_reliability(&red.graph, red.s, red.t);
        assert!((before - after).abs() < 1e-12);
    }
}
