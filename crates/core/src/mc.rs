//! Monte Carlo sampling with BFS and lazy edge instantiation
//! (§2.2, Algorithm 1 of the paper).
//!
//! For each of `K` rounds, a BFS runs from `s`; every out-edge encountered
//! is sampled *on demand* with its own probability (so edges in graph
//! regions the BFS never reaches are never sampled), and the round stops
//! early as soon as `t` is visited. The estimator is the hit fraction —
//! unbiased, with Binomial variance `R(1-R)/K` (Eq. 4).

use crate::estimator::{validate_query, Estimate, Estimator, UpdateOutcome};
use crate::memory::MemoryTracker;
use crate::sampler::coin;
use crate::session::{EstimationSession, SampleBudget};
use rand::RngCore;
use relcomp_ugraph::traversal::{bfs_reaches, BfsWorkspace};
use relcomp_ugraph::{EdgeUpdate, NodeId, UncertainGraph};
use std::sync::Arc;

/// The baseline estimator every other method is compared against.
pub struct McSampling {
    graph: Arc<UncertainGraph>,
    ws: BfsWorkspace,
}

impl McSampling {
    /// Create an MC estimator over `graph`.
    pub fn new(graph: Arc<UncertainGraph>) -> Self {
        let n = graph.num_nodes();
        McSampling {
            graph,
            ws: BfsWorkspace::new(n),
        }
    }

    /// Access the underlying graph.
    pub fn graph(&self) -> &UncertainGraph {
        &self.graph
    }
}

impl Estimator for McSampling {
    fn name(&self) -> &'static str {
        "MC"
    }

    fn estimate_with(
        &mut self,
        s: NodeId,
        t: NodeId,
        budget: &SampleBudget,
        rng: &mut dyn RngCore,
    ) -> Estimate {
        validate_query(&self.graph, s, t);
        let mut session = EstimationSession::begin(budget);

        let mut mem = MemoryTracker::new();
        // Only auxiliary structure: the BFS workspace (visited marks + queue).
        mem.baseline(self.ws.resident_bytes());

        // Batching does not perturb the RNG stream — a fixed budget draws
        // the exact coin sequence the historical single loop drew.
        let mut hits = 0usize;
        let graph = &self.graph;
        loop {
            let n = session.next_batch();
            if n == 0 {
                break;
            }
            let mut batch_hits = 0usize;
            for _ in 0..n {
                if bfs_reaches(graph, s, t, &mut self.ws, |e| {
                    coin(rng, graph.prob(e).value())
                }) {
                    batch_hits += 1;
                }
            }
            hits += batch_hits;
            session.record_hits(batch_hits, n);
        }

        session.finish(hits as f64 / session.samples() as f64, &mem)
    }

    fn apply_updates(
        &mut self,
        graph: &Arc<UncertainGraph>,
        _updates: &[EdgeUpdate],
        _rng: &mut dyn RngCore,
    ) -> UpdateOutcome {
        // No index: any graph over the same node space (the workspace is
        // sized by n) can simply be rebound.
        if graph.num_nodes() != self.graph.num_nodes() {
            return UpdateOutcome::Rebuild;
        }
        self.graph = Arc::clone(graph);
        UpdateOutcome::Rebound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_reliability;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use relcomp_ugraph::GraphBuilder;

    fn chain(probs: &[f64]) -> Arc<UncertainGraph> {
        let mut b = GraphBuilder::new(probs.len() + 1);
        for (i, &p) in probs.iter().enumerate() {
            b.add_edge(NodeId(i as u32), NodeId(i as u32 + 1), p)
                .unwrap();
        }
        Arc::new(b.build())
    }

    #[test]
    fn converges_to_exact_on_chain() {
        let g = chain(&[0.8, 0.7, 0.9]);
        let exact = exact_reliability(&g, NodeId(0), NodeId(3));
        let mut mc = McSampling::new(g);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let est = mc.estimate(NodeId(0), NodeId(3), 50_000, &mut rng);
        assert!(est.is_valid());
        assert!(
            (est.reliability - exact).abs() < 0.01,
            "{} vs {exact}",
            est.reliability
        );
    }

    #[test]
    fn s_equals_t_always_hits() {
        let g = chain(&[0.1]);
        let mut mc = McSampling::new(g);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let est = mc.estimate(NodeId(0), NodeId(0), 100, &mut rng);
        assert_eq!(est.reliability, 1.0);
    }

    #[test]
    fn disconnected_never_hits() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.9).unwrap();
        let g = Arc::new(b.build());
        let mut mc = McSampling::new(g);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let est = mc.estimate(NodeId(0), NodeId(2), 500, &mut rng);
        assert_eq!(est.reliability, 0.0);
    }

    #[test]
    fn reports_samples_and_time() {
        let g = chain(&[0.5, 0.5]);
        let mut mc = McSampling::new(g);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let est = mc.estimate(NodeId(0), NodeId(2), 123, &mut rng);
        assert_eq!(est.samples, 123);
        assert!(est.aux_bytes > 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_invalid_nodes() {
        let g = chain(&[0.5]);
        let mut mc = McSampling::new(g);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let _ = mc.estimate(NodeId(0), NodeId(99), 10, &mut rng);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_samples() {
        let g = chain(&[0.5]);
        let mut mc = McSampling::new(g);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let _ = mc.estimate(NodeId(0), NodeId(1), 0, &mut rng);
    }

    #[test]
    fn estimator_is_unbiased_over_repeats() {
        // Mean of many low-K estimates should approach exact value.
        let g = chain(&[0.5, 0.5]);
        let exact = exact_reliability(&g, NodeId(0), NodeId(2));
        let mut mc = McSampling::new(g);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let reps = 2000;
        let mut sum = 0.0;
        for _ in 0..reps {
            sum += mc.estimate(NodeId(0), NodeId(2), 10, &mut rng).reliability;
        }
        let mean = sum / reps as f64;
        assert!((mean - exact).abs() < 0.02, "mean {mean} vs {exact}");
    }
}
