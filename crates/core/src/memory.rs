//! Analytic memory accounting.
//!
//! The paper highlights that *none* of the original studies reported online
//! memory usage, and that it varies by orders of magnitude (Fig. 12:
//! MC < LP+ < ProbTree < BFS Sharing < RHH ≈ RSS). Rather than sampling
//! process RSS (noisy, allocator-dependent, and impossible to attribute to
//! a single estimator when several share a process), each estimator *tracks
//! the bytes of every auxiliary structure it creates* and reports the peak.
//! This is deterministic, attributable, and reproduces exactly the
//! structural differences the paper's Fig. 12 is about.

/// Tracks current and peak auxiliary bytes during one estimation call.
#[derive(Clone, Copy, Debug, Default)]
pub struct MemoryTracker {
    current: usize,
    peak: usize,
}

impl MemoryTracker {
    /// Fresh tracker with zero usage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an allocation of `bytes`.
    #[inline]
    pub fn alloc(&mut self, bytes: usize) {
        self.current += bytes;
        if self.current > self.peak {
            self.peak = self.current;
        }
    }

    /// Record a deallocation of `bytes` (saturating).
    #[inline]
    pub fn free(&mut self, bytes: usize) {
        self.current = self.current.saturating_sub(bytes);
    }

    /// Set a baseline that persists for the whole call (e.g. a loaded
    /// index): counted into both current and peak.
    pub fn baseline(&mut self, bytes: usize) {
        self.alloc(bytes);
    }

    /// Current live bytes.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Peak bytes observed.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

/// Bytes of a `Vec<T>`'s heap buffer given its capacity.
#[inline]
pub fn vec_bytes<T>(capacity: usize) -> usize {
    capacity * std::mem::size_of::<T>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut m = MemoryTracker::new();
        m.alloc(100);
        m.alloc(50);
        assert_eq!(m.peak(), 150);
        m.free(120);
        assert_eq!(m.current(), 30);
        assert_eq!(m.peak(), 150);
        m.alloc(200);
        assert_eq!(m.peak(), 230);
    }

    #[test]
    fn free_saturates() {
        let mut m = MemoryTracker::new();
        m.alloc(10);
        m.free(100);
        assert_eq!(m.current(), 0);
    }

    #[test]
    fn vec_bytes_uses_element_size() {
        assert_eq!(vec_bytes::<u64>(4), 32);
        assert_eq!(vec_bytes::<u8>(10), 10);
    }
}
