//! Shared mutable state for the recursive estimators.
//!
//! A recursion node is a *prefix group* `G(E1, E2)`: `E1` = edges forced
//! present, `E2` = edges forced absent, everything else undetermined
//! (§2.4). Instead of materializing a simplified graph per recursive call
//! (as the reference C++ implementation does), we keep one status overlay
//! with an undo log — semantically identical, cheaper. Memory accounting
//! still *models* the reference design (a simplified-graph instance per
//! live recursion frame) so that Fig. 12's memory ordering is reproduced;
//! see `memory_model_bytes`.

use crate::sampler::coin;
use rand::RngCore;
use relcomp_ugraph::traversal::{bfs_reaches, BfsWorkspace};
use relcomp_ugraph::{EdgeId, NodeId, UncertainGraph};

/// Status of an edge in the current prefix group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeStatus {
    /// Not yet fixed; sampled at the MC leaves.
    Undetermined,
    /// Forced present (member of `E1`).
    Included,
    /// Forced absent (member of `E2`).
    Excluded,
}

/// Undo record for one `include`/`exclude` operation.
pub struct Undo {
    edge: EdgeId,
    prev: EdgeStatus,
    /// Number of nodes appended to the reached stack by this op.
    added_reached: usize,
}

/// Mutable prefix-group state for one query.
pub struct RecState<'g> {
    graph: &'g UncertainGraph,
    s: NodeId,
    t: NodeId,
    status: Vec<EdgeStatus>,
    /// Stack of nodes reachable from `s` via included edges, in discovery
    /// order (doubles as the DFS preference order for edge selection).
    reached: Vec<NodeId>,
    reached_mem: Vec<bool>,
    /// Count of undetermined edges (for the memory model).
    undetermined: usize,
    ws: BfsWorkspace,
}

impl<'g> RecState<'g> {
    /// Fresh state: `E1 = E2 = {}`, reached = `{s}`.
    pub fn new(graph: &'g UncertainGraph, s: NodeId, t: NodeId) -> Self {
        let n = graph.num_nodes();
        let mut reached_mem = vec![false; n];
        reached_mem[s.index()] = true;
        RecState {
            graph,
            s,
            t,
            status: vec![EdgeStatus::Undetermined; graph.num_edges()],
            reached: vec![s],
            reached_mem,
            undetermined: graph.num_edges(),
            ws: BfsWorkspace::new(n),
        }
    }

    /// Whether `t` is reached from `s` through included edges — the
    /// "E1 contains a path" termination test (Alg. 4 line 4).
    #[inline]
    pub fn t_reached(&self) -> bool {
        self.reached_mem[self.t.index()]
    }

    /// Current status of `e`.
    #[allow(dead_code)] // part of the overlay API surface; exercised in tests
    #[inline]
    pub fn status(&self, e: EdgeId) -> EdgeStatus {
        self.status[e.index()]
    }

    /// Number of currently undetermined edges.
    pub fn undetermined_count(&self) -> usize {
        self.undetermined
    }

    /// Force edge `e` present and extend the reached closure.
    pub fn include(&mut self, e: EdgeId) -> Undo {
        let prev = self.status[e.index()];
        debug_assert_eq!(prev, EdgeStatus::Undetermined, "double-fixing edge {e}");
        self.status[e.index()] = EdgeStatus::Included;
        if prev == EdgeStatus::Undetermined {
            self.undetermined -= 1;
        }

        let mut added = 0usize;
        let (u, v) = self.graph.endpoints(e);
        if self.reached_mem[u.index()] && !self.reached_mem[v.index()] {
            // BFS over included edges from v (cascading closure — needed by
            // RSS, whose strata can include edges ahead of the frontier).
            let start = self.reached.len();
            self.reached_mem[v.index()] = true;
            self.reached.push(v);
            let mut cursor = start;
            while cursor < self.reached.len() {
                let x = self.reached[cursor];
                cursor += 1;
                for (e2, y) in self.graph.out_edges(x) {
                    if self.status[e2.index()] == EdgeStatus::Included
                        && !self.reached_mem[y.index()]
                    {
                        self.reached_mem[y.index()] = true;
                        self.reached.push(y);
                    }
                }
            }
            added = self.reached.len() - start;
        }
        Undo {
            edge: e,
            prev,
            added_reached: added,
        }
    }

    /// Force edge `e` absent.
    pub fn exclude(&mut self, e: EdgeId) -> Undo {
        let prev = self.status[e.index()];
        debug_assert_eq!(prev, EdgeStatus::Undetermined, "double-fixing edge {e}");
        self.status[e.index()] = EdgeStatus::Excluded;
        if prev == EdgeStatus::Undetermined {
            self.undetermined -= 1;
        }
        Undo {
            edge: e,
            prev,
            added_reached: 0,
        }
    }

    /// Revert one `include`/`exclude` (must be applied LIFO).
    pub fn undo(&mut self, undo: Undo) {
        let cur = self.status[undo.edge.index()];
        self.status[undo.edge.index()] = undo.prev;
        if cur != EdgeStatus::Undetermined && undo.prev == EdgeStatus::Undetermined {
            self.undetermined += 1;
        }
        for _ in 0..undo.added_reached {
            let v = self.reached.pop().expect("undo imbalance");
            self.reached_mem[v.index()] = false;
        }
    }

    /// DFS-preference edge selection (§2.4, "experimentally optimal
    /// strategy"): from the most recently reached node downward, return the
    /// first undetermined edge leading out of the reached set.
    pub fn select_edge_dfs(&self) -> Option<EdgeId> {
        for &v in self.reached.iter().rev() {
            for (e, w) in self.graph.out_edges(v) {
                if self.status[e.index()] == EdgeStatus::Undetermined
                    && !self.reached_mem[w.index()]
                {
                    return Some(e);
                }
            }
        }
        None
    }

    /// BFS edge selection for RSS (Alg. 5 line 9): breadth-first from `s`
    /// over non-excluded edges, collecting the first `r` undetermined edges
    /// encountered.
    pub fn select_edges_bfs(&mut self, r: usize) -> Vec<EdgeId> {
        let mut selected = Vec::with_capacity(r);
        self.ws.reset();
        self.ws.visited.insert(self.s);
        self.ws.queue.clear();
        self.ws.queue.push_back(self.s);
        while let Some(v) = self.ws.queue.pop_front() {
            for (e, w) in self.graph.out_edges(v) {
                match self.status[e.index()] {
                    EdgeStatus::Excluded => continue,
                    EdgeStatus::Undetermined => {
                        if selected.len() < r {
                            selected.push(e);
                        } else {
                            return selected;
                        }
                    }
                    EdgeStatus::Included => {}
                }
                if self.ws.visited.insert(w) {
                    self.ws.queue.push_back(w);
                }
            }
        }
        selected
    }

    /// Is `t` reachable from `s` through non-excluded edges? `false` means
    /// `E2` already contains an s-t cut (Alg. 4 line 6).
    pub fn t_possibly_reachable(&mut self) -> bool {
        let status = &self.status;
        let (graph, s, t) = (self.graph, self.s, self.t);
        bfs_reaches(graph, s, t, &mut self.ws, |e| {
            status[e.index()] != EdgeStatus::Excluded
        })
    }

    /// Conditional MC fallback (Alg. 4 lines 1-2 / Alg. 5 lines 3-7):
    /// estimate the group reliability with `k` plain samples where included
    /// edges always exist, excluded never, and undetermined edges are
    /// sampled lazily.
    pub fn mc_conditional(&mut self, k: usize, rng: &mut dyn RngCore) -> f64 {
        debug_assert!(k > 0);
        let mut hits = 0usize;
        let status = &self.status;
        let (graph, s, t) = (self.graph, self.s, self.t);
        for _ in 0..k {
            if bfs_reaches(graph, s, t, &mut self.ws, |e| match status[e.index()] {
                EdgeStatus::Included => true,
                EdgeStatus::Excluded => false,
                EdgeStatus::Undetermined => coin(rng, graph.prob(e).value()),
            }) {
                hits += 1;
            }
        }
        hits as f64 / k as f64
    }

    /// Bytes the *reference implementation* would hold for one live
    /// recursion frame: a simplified graph instance over the undetermined
    /// edges plus per-node state. Used for Fig. 12-style accounting.
    pub fn memory_model_bytes(&self) -> usize {
        // 12 bytes/edge (two endpoints + probability, as the C++ reference
        // stores adjacency pairs) + 4 bytes/node.
        self.undetermined * 12 + self.graph.num_nodes() * 4
    }

    /// Fixed per-query overhead: status overlay + reached structures.
    pub fn base_bytes(&self) -> usize {
        self.status.len()
            + self.reached_mem.len()
            + self.reached.capacity() * 4
            + self.ws.resident_bytes()
    }

    /// The query's probability accessor (convenience for the estimators).
    pub fn prob(&self, e: EdgeId) -> f64 {
        self.graph.prob(e).value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relcomp_ugraph::GraphBuilder;

    fn diamond() -> UncertainGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.6).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.7).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.4).unwrap();
        b.build()
    }

    fn edge(g: &UncertainGraph, u: u32, v: u32) -> EdgeId {
        g.find_edge(NodeId(u), NodeId(v)).unwrap()
    }

    #[test]
    fn include_extends_reached_and_detects_path() {
        let g = diamond();
        let mut st = RecState::new(&g, NodeId(0), NodeId(3));
        assert!(!st.t_reached());
        let u1 = st.include(edge(&g, 0, 1));
        assert!(!st.t_reached());
        let u2 = st.include(edge(&g, 1, 3));
        assert!(st.t_reached());
        st.undo(u2);
        assert!(!st.t_reached());
        st.undo(u1);
        assert_eq!(st.undetermined_count(), 4);
    }

    #[test]
    fn cascading_closure_on_out_of_order_inclusion() {
        // Include 1 -> 3 first (source unreached), then 0 -> 1: reached
        // must cascade through to 3.
        let g = diamond();
        let mut st = RecState::new(&g, NodeId(0), NodeId(3));
        let _u1 = st.include(edge(&g, 1, 3));
        assert!(!st.t_reached());
        let _u2 = st.include(edge(&g, 0, 1));
        assert!(st.t_reached());
    }

    #[test]
    fn exclusion_cut_detected() {
        let g = diamond();
        let mut st = RecState::new(&g, NodeId(0), NodeId(3));
        assert!(st.t_possibly_reachable());
        let _a = st.exclude(edge(&g, 0, 1));
        assert!(st.t_possibly_reachable());
        let _b = st.exclude(edge(&g, 0, 2));
        assert!(!st.t_possibly_reachable());
    }

    #[test]
    fn dfs_selection_prefers_recent_nodes() {
        let g = diamond();
        let mut st = RecState::new(&g, NodeId(0), NodeId(3));
        // Initially only s is reached; first undetermined out-edge of 0.
        let first = st.select_edge_dfs().unwrap();
        assert_eq!(g.source(first), NodeId(0));
        let _u = st.include(edge(&g, 0, 1));
        // Node 1 is most recent: its out-edge 1 -> 3 must be preferred.
        let next = st.select_edge_dfs().unwrap();
        assert_eq!(next, edge(&g, 1, 3));
    }

    #[test]
    fn dfs_selection_none_when_frontier_exhausted() {
        let g = diamond();
        let mut st = RecState::new(&g, NodeId(0), NodeId(3));
        let _a = st.exclude(edge(&g, 0, 1));
        let _b = st.exclude(edge(&g, 0, 2));
        assert!(st.select_edge_dfs().is_none());
    }

    #[test]
    fn bfs_selection_orders_by_distance() {
        let g = diamond();
        let mut st = RecState::new(&g, NodeId(0), NodeId(3));
        let sel = st.select_edges_bfs(10);
        assert_eq!(sel.len(), 4);
        // The two s-adjacent edges come first.
        assert_eq!(g.source(sel[0]), NodeId(0));
        assert_eq!(g.source(sel[1]), NodeId(0));
        let sel2 = st.select_edges_bfs(2);
        assert_eq!(sel2.len(), 2);
    }

    #[test]
    fn mc_conditional_respects_forced_statuses() {
        let g = diamond();
        let mut st = RecState::new(&g, NodeId(0), NodeId(3));
        let _a = st.include(edge(&g, 0, 1));
        let _b = st.include(edge(&g, 1, 3));
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        // Path fully included: every sample hits.
        assert_eq!(st.mc_conditional(50, &mut rng), 1.0);
    }

    #[test]
    fn memory_model_decreases_with_determined_edges() {
        let g = diamond();
        let mut st = RecState::new(&g, NodeId(0), NodeId(3));
        let before = st.memory_model_bytes();
        let _a = st.exclude(edge(&g, 0, 1));
        assert!(st.memory_model_bytes() < before);
        assert!(st.base_bytes() > 0);
    }
}
