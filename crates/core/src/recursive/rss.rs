//! Recursive Stratified Sampling, "RSS" (§2.5, Algorithm 5 and Table 1 of
//! the paper; originally Li et al., TKDE'16).
//!
//! RSS generalizes RHH from one pivot edge to `r` of them: BFS from `s`
//! selects `r` undetermined edges `T = {e_1 .. e_r}`, and the probability
//! space is split into `r + 1` disjoint strata (Table 1):
//!
//! * stratum `0`   — all of `T` absent;
//! * stratum `i`   — `e_1 .. e_{i-1}` absent, `e_i` present, the rest
//!   undetermined.
//!
//! Each stratum gets a sample budget proportional to its probability
//! `pi_i` (Eq. 10) and is estimated recursively on the simplified graph;
//! the final estimate is `sum_i pi_i * mu_i`. RHH is the special case
//! `r = 1` (§3.2 point 1).

use crate::estimator::{validate_query, Estimate, Estimator, UpdateOutcome};
use crate::memory::MemoryTracker;
use crate::recursive::state::RecState;
use crate::session::{EstimationSession, SampleBudget};
use rand::RngCore;
use relcomp_ugraph::{EdgeId, EdgeUpdate, NodeId, UncertainGraph};
use std::sync::Arc;

/// Recursive stratified sampling estimator (RSS).
pub struct RecursiveStratified {
    graph: Arc<UncertainGraph>,
    /// Conditional-MC fallback budget (paper default 5; Fig. 16 sweeps it).
    threshold: usize,
    /// Number of pivot edges per level (paper default 50; Fig. 17 sweeps
    /// it).
    r: usize,
}

impl RecursiveStratified {
    /// Paper defaults (§3.1.3).
    pub const DEFAULT_THRESHOLD: usize = 5;
    /// Paper default stratum count `r` (§3.1.3, recommended in [28]).
    pub const DEFAULT_R: usize = 50;

    /// Create with paper-default parameters.
    pub fn new(graph: Arc<UncertainGraph>) -> Self {
        Self::with_params(graph, Self::DEFAULT_THRESHOLD, Self::DEFAULT_R)
    }

    /// Create with explicit threshold and stratum count.
    pub fn with_params(graph: Arc<UncertainGraph>, threshold: usize, r: usize) -> Self {
        assert!(threshold >= 1, "threshold must be >= 1");
        assert!(r >= 1, "stratum parameter r must be >= 1");
        RecursiveStratified {
            graph,
            threshold,
            r,
        }
    }

    /// The stratum parameter `r` in use.
    pub fn stratum_r(&self) -> usize {
        self.r
    }

    /// The fallback threshold in use.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    fn recurse(
        &self,
        st: &mut RecState<'_>,
        k: usize,
        rng: &mut dyn RngCore,
        mem: &mut MemoryTracker,
    ) -> f64 {
        let frame_bytes = st.memory_model_bytes();
        mem.alloc(frame_bytes);

        let result = (|| {
            if st.t_reached() {
                return 1.0;
            }
            // Prune branches whose exclusions already cut off t — the
            // "simplify graph" effect of Alg. 5 line 12.
            if !st.t_possibly_reachable() {
                return 0.0;
            }
            if k < self.threshold || st.undetermined_count() < self.r {
                return st.mc_conditional(k.max(1), rng);
            }
            let selected = st.select_edges_bfs(self.r);
            if selected.is_empty() {
                // No undetermined edge reachable from s: reliability is
                // fully determined by E1 (and t is not reached).
                return 0.0;
            }

            let mut estimate = 0.0;
            // Stratum 0: all selected edges absent.
            // Stratum i (1-based): e_1..e_{i-1} absent, e_i present.
            for i in 0..=selected.len() {
                let (pi, fixes) = stratum(st, &selected, i);
                if pi <= 0.0 {
                    continue;
                }
                let ki = ((k as f64 * pi).round() as usize).max(1);
                let mut undos = Vec::with_capacity(fixes.len());
                for &(e, present) in &fixes {
                    undos.push(if present {
                        st.include(e)
                    } else {
                        st.exclude(e)
                    });
                }
                let mu = self.recurse(st, ki, rng, mem);
                for undo in undos.into_iter().rev() {
                    st.undo(undo);
                }
                estimate += pi * mu;
            }
            estimate
        })();

        mem.free(frame_bytes);
        result
    }
}

/// Stratum `i`'s probability (Eq. 10) and the edge fixes it implies.
fn stratum(st: &RecState<'_>, selected: &[EdgeId], i: usize) -> (f64, Vec<(EdgeId, bool)>) {
    let mut pi = 1.0;
    let mut fixes = Vec::new();
    if i == 0 {
        for &e in selected {
            pi *= 1.0 - st.prob(e);
            fixes.push((e, false));
        }
    } else {
        for &e in &selected[..i - 1] {
            pi *= 1.0 - st.prob(e);
            fixes.push((e, false));
        }
        let e = selected[i - 1];
        pi *= st.prob(e);
        fixes.push((e, true));
    }
    (pi, fixes)
}

impl Estimator for RecursiveStratified {
    fn name(&self) -> &'static str {
        "RSS"
    }

    fn estimate_with(
        &mut self,
        s: NodeId,
        t: NodeId,
        budget: &SampleBudget,
        rng: &mut dyn RngCore,
    ) -> Estimate {
        validate_query(&self.graph, s, t);
        let mut session = EstimationSession::begin(budget);
        let mut mem = MemoryTracker::new();

        let mut st = RecState::new(&self.graph, s, t);
        mem.baseline(st.base_bytes());

        if s == t {
            return session.finish_exact(1.0, &mem);
        }

        if budget.is_fixed() {
            // One stratified recursion over the whole budget — the
            // historical deterministic allocation, bit for bit.
            let k = budget.max_samples();
            let r = self.recurse(&mut st, k, rng, &mut mem).clamp(0.0, 1.0);
            session.record_value(r, k);
            return session.finish(r, &mem);
        }

        // Adaptive: one recursion per batch, normal CI over batch means.
        loop {
            let n = session.next_batch();
            if n == 0 {
                break;
            }
            // A trailing ragged batch would get equal weight in the
            // batch-mean CI despite its smaller budget; skip it (the cap
            // is within one batch of exhausted anyway). The first batch
            // is always drawn, however short, so every session answers.
            if n < budget.batch() && session.tracker().count() > 0 {
                break;
            }
            let r = self.recurse(&mut st, n, rng, &mut mem).clamp(0.0, 1.0);
            session.record_value(r, n);
        }
        session.finish(session.tracker().mean().clamp(0.0, 1.0), &mem)
    }

    fn apply_updates(
        &mut self,
        graph: &Arc<UncertainGraph>,
        _updates: &[EdgeUpdate],
        _rng: &mut dyn RngCore,
    ) -> UpdateOutcome {
        // Stateless between queries: rebinding the graph is the whole
        // migration.
        if graph.num_nodes() != self.graph.num_nodes() {
            return UpdateOutcome::Rebuild;
        }
        self.graph = Arc::clone(graph);
        UpdateOutcome::Rebound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_reliability;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use relcomp_ugraph::GraphBuilder;

    fn diamond() -> Arc<UncertainGraph> {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.6).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.7).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.4).unwrap();
        Arc::new(b.build())
    }

    #[test]
    fn stratum_probabilities_partition_to_one() {
        let g = diamond();
        let st = RecState::new(&g, NodeId(0), NodeId(3));
        let selected: Vec<EdgeId> = g.edges().map(|(e, _, _, _)| e).collect();
        let total: f64 = (0..=selected.len())
            .map(|i| stratum(&st, &selected, i).0)
            .sum();
        assert!((total - 1.0).abs() < 1e-12, "total {total}");
    }

    #[test]
    fn stratum_design_matches_table1() {
        let g = diamond();
        let st = RecState::new(&g, NodeId(0), NodeId(3));
        let selected: Vec<EdgeId> = g.edges().map(|(e, _, _, _)| e).collect();
        // Stratum 0: every selected edge fixed absent.
        let (_, fixes0) = stratum(&st, &selected, 0);
        assert!(fixes0.iter().all(|&(_, present)| !present));
        assert_eq!(fixes0.len(), 4);
        // Stratum 2: e1 absent, e2 present, the rest (e3, e4) untouched.
        let (_, fixes2) = stratum(&st, &selected, 2);
        assert_eq!(fixes2.len(), 2);
        assert_eq!(fixes2[0], (selected[0], false));
        assert_eq!(fixes2[1], (selected[1], true));
    }

    #[test]
    fn converges_to_exact_on_diamond() {
        let g = diamond();
        let exact = exact_reliability(&g, NodeId(0), NodeId(3));
        let mut rss = RecursiveStratified::with_params(Arc::clone(&g), 5, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(51);
        let reps = 200;
        let sum: f64 = (0..reps)
            .map(|_| {
                rss.estimate(NodeId(0), NodeId(3), 2000, &mut rng)
                    .reliability
            })
            .sum();
        let mean = sum / reps as f64;
        assert!((mean - exact).abs() < 0.01, "{mean} vs {exact}");
    }

    #[test]
    fn variance_below_mc_at_equal_k() {
        let g = diamond();
        let mut rss = RecursiveStratified::with_params(Arc::clone(&g), 5, 3);
        let mut mc = crate::mc::McSampling::new(Arc::clone(&g));
        let mut rng = ChaCha8Rng::seed_from_u64(52);
        let reps = 300;
        let k = 200;
        let var = |xs: &[f64]| {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
        };
        let rss_runs: Vec<f64> = (0..reps)
            .map(|_| rss.estimate(NodeId(0), NodeId(3), k, &mut rng).reliability)
            .collect();
        let mc_runs: Vec<f64> = (0..reps)
            .map(|_| mc.estimate(NodeId(0), NodeId(3), k, &mut rng).reliability)
            .collect();
        assert!(
            var(&rss_runs) < var(&mc_runs),
            "rss var {} vs mc var {}",
            var(&rss_runs),
            var(&mc_runs)
        );
    }

    #[test]
    fn unreachable_is_zero_and_path_is_one() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let g = Arc::new(b.build());
        let mut rss = RecursiveStratified::new(Arc::clone(&g));
        let mut rng = ChaCha8Rng::seed_from_u64(53);
        assert_eq!(
            rss.estimate(NodeId(0), NodeId(1), 500, &mut rng)
                .reliability,
            1.0
        );
        assert_eq!(
            rss.estimate(NodeId(0), NodeId(2), 500, &mut rng)
                .reliability,
            0.0
        );
    }

    #[test]
    fn small_r_equals_rhh_shape() {
        // r = 1 makes RSS structurally RHH (the paper notes RHH is the
        // r = 1 special case); both should agree with exact.
        let g = diamond();
        let exact = exact_reliability(&g, NodeId(0), NodeId(3));
        let mut rss = RecursiveStratified::with_params(Arc::clone(&g), 5, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(54);
        let reps = 200;
        let sum: f64 = (0..reps)
            .map(|_| {
                rss.estimate(NodeId(0), NodeId(3), 1000, &mut rng)
                    .reliability
            })
            .sum();
        assert!((sum / reps as f64 - exact).abs() < 0.015);
    }

    #[test]
    #[should_panic(expected = "stratum parameter")]
    fn zero_r_rejected() {
        let _ = RecursiveStratified::with_params(diamond(), 5, 0);
    }
}
