//! Recursive sampling, "RHH" (§2.4, Algorithm 4 of the paper; originally
//! Jin et al., PVLDB'11, adapted from distance-constrained to plain s-t
//! reliability).
//!
//! At each step the estimator picks an expandable edge `e` (DFS
//! preference), splits the prefix group into the worlds containing `e` and
//! those not, and *deterministically* allocates `K·P(e)` samples to the
//! first and the rest to the second (the Hansen–Hurwitz style allocation
//! that reduces variance vs. plain MC, Theorem 2 of [20]). Recursion stops
//! on: an included s-t path (reliability 1), an excluded s-t cut
//! (reliability 0), or a budget below the threshold (conditional MC).

use crate::estimator::{validate_query, Estimate, Estimator, UpdateOutcome};
use crate::memory::MemoryTracker;
use crate::recursive::state::RecState;
use crate::session::{EstimationSession, SampleBudget};
use rand::RngCore;
use relcomp_ugraph::{EdgeUpdate, NodeId, UncertainGraph};
use std::sync::Arc;

/// Recursive sampling estimator (RHH).
pub struct RecursiveSampling {
    graph: Arc<UncertainGraph>,
    /// Budget at or below which the conditional-MC fallback runs
    /// (the paper uses 5; Fig. 16 sweeps it).
    threshold: usize,
}

impl RecursiveSampling {
    /// Paper default threshold (§3.1.3).
    pub const DEFAULT_THRESHOLD: usize = 5;

    /// Create with the paper's default threshold.
    pub fn new(graph: Arc<UncertainGraph>) -> Self {
        Self::with_threshold(graph, Self::DEFAULT_THRESHOLD)
    }

    /// Create with an explicit threshold (Fig. 16 ablation).
    pub fn with_threshold(graph: Arc<UncertainGraph>, threshold: usize) -> Self {
        assert!(threshold >= 1, "threshold must be >= 1");
        RecursiveSampling { graph, threshold }
    }

    /// The non-recursive fallback threshold in use.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    fn recurse(
        &self,
        st: &mut RecState<'_>,
        k: usize,
        rng: &mut dyn RngCore,
        mem: &mut MemoryTracker,
    ) -> f64 {
        // Model the reference implementation's per-frame simplified graph.
        let frame_bytes = st.memory_model_bytes();
        mem.alloc(frame_bytes);

        let result = (|| {
            if st.t_reached() {
                return 1.0; // E1 contains an s-t path
            }
            if k <= self.threshold {
                return st.mc_conditional(k.max(1), rng);
            }
            let Some(e) = st.select_edge_dfs() else {
                return 0.0; // no expandable edge: E2 contains an s-t cut
            };
            let p = st.prob(e);
            // Proportional allocation, clamped so both branches keep at
            // least one sample (keeps the estimator unbiased even when
            // floor(K * p) would be 0; see DESIGN.md).
            let k1 = ((k as f64 * p) as usize).clamp(1, k - 1);
            let k2 = k - k1;

            let undo = st.include(e);
            let r1 = self.recurse(st, k1, rng, mem);
            st.undo(undo);

            let undo = st.exclude(e);
            let r2 = self.recurse(st, k2, rng, mem);
            st.undo(undo);

            p * r1 + (1.0 - p) * r2
        })();

        mem.free(frame_bytes);
        result
    }
}

impl Estimator for RecursiveSampling {
    fn name(&self) -> &'static str {
        "RHH"
    }

    fn estimate_with(
        &mut self,
        s: NodeId,
        t: NodeId,
        budget: &SampleBudget,
        rng: &mut dyn RngCore,
    ) -> Estimate {
        validate_query(&self.graph, s, t);
        let mut session = EstimationSession::begin(budget);
        let mut mem = MemoryTracker::new();

        let mut st = RecState::new(&self.graph, s, t);
        mem.baseline(st.base_bytes());

        if s == t {
            return session.finish_exact(1.0, &mem);
        }
        if !st.t_possibly_reachable() {
            return session.finish_exact(0.0, &mem);
        }

        if budget.is_fixed() {
            // One recursion over the whole budget — the historical
            // deterministic allocation, bit for bit. A single run has no
            // replication, so variance/half-width stay unmeasured.
            let k = budget.max_samples();
            let r = self.recurse(&mut st, k, rng, &mut mem).clamp(0.0, 1.0);
            session.record_value(r, k);
            return session.finish(r, &mem);
        }

        // Adaptive: each batch is one independent recursion whose
        // estimate is one observation; the normal CI over batch means
        // drives the stopping rule.
        loop {
            let n = session.next_batch();
            if n == 0 {
                break;
            }
            // A trailing ragged batch would get equal weight in the
            // batch-mean CI despite its smaller budget; skip it (the cap
            // is within one batch of exhausted anyway). The first batch
            // is always drawn, however short, so every session answers.
            if n < budget.batch() && session.tracker().count() > 0 {
                break;
            }
            let r = self.recurse(&mut st, n, rng, &mut mem).clamp(0.0, 1.0);
            session.record_value(r, n);
        }
        session.finish(session.tracker().mean().clamp(0.0, 1.0), &mem)
    }

    fn apply_updates(
        &mut self,
        graph: &Arc<UncertainGraph>,
        _updates: &[EdgeUpdate],
        _rng: &mut dyn RngCore,
    ) -> UpdateOutcome {
        // Stateless between queries: rebinding the graph is the whole
        // migration.
        if graph.num_nodes() != self.graph.num_nodes() {
            return UpdateOutcome::Rebuild;
        }
        self.graph = Arc::clone(graph);
        UpdateOutcome::Rebound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_reliability;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use relcomp_ugraph::GraphBuilder;

    fn diamond() -> Arc<UncertainGraph> {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.6).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.7).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.4).unwrap();
        Arc::new(b.build())
    }

    #[test]
    fn converges_to_exact_on_diamond() {
        let g = diamond();
        let exact = exact_reliability(&g, NodeId(0), NodeId(3));
        let mut rhh = RecursiveSampling::new(Arc::clone(&g));
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        // Average several runs — a single run with K = 2000 is already a
        // low-variance estimate for this 4-edge graph.
        let reps = 200;
        let mut sum = 0.0;
        for _ in 0..reps {
            sum += rhh
                .estimate(NodeId(0), NodeId(3), 2000, &mut rng)
                .reliability;
        }
        let mean = sum / reps as f64;
        assert!((mean - exact).abs() < 0.01, "{mean} vs {exact}");
    }

    #[test]
    fn deterministic_path_returns_one() {
        // 0 -> 1 with p = 1.0: recursion should resolve to exactly 1.
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let g = Arc::new(b.build());
        let mut rhh = RecursiveSampling::new(g);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let est = rhh.estimate(NodeId(0), NodeId(1), 1000, &mut rng);
        assert_eq!(est.reliability, 1.0);
    }

    #[test]
    fn unreachable_returns_exact_zero() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.9).unwrap();
        let g = Arc::new(b.build());
        let mut rhh = RecursiveSampling::new(g);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert_eq!(
            rhh.estimate(NodeId(0), NodeId(2), 1000, &mut rng)
                .reliability,
            0.0
        );
    }

    #[test]
    fn variance_is_below_plain_mc() {
        // The paper's core claim for recursive estimators: lower variance
        // at equal K. Compare empirical variance over repeated runs.
        let g = diamond();
        let mut rhh = RecursiveSampling::new(Arc::clone(&g));
        let mut mc = crate::mc::McSampling::new(Arc::clone(&g));
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        let reps = 300;
        let k = 200;
        let var = |xs: &[f64]| {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
        };
        let rhh_runs: Vec<f64> = (0..reps)
            .map(|_| rhh.estimate(NodeId(0), NodeId(3), k, &mut rng).reliability)
            .collect();
        let mc_runs: Vec<f64> = (0..reps)
            .map(|_| mc.estimate(NodeId(0), NodeId(3), k, &mut rng).reliability)
            .collect();
        assert!(
            var(&rhh_runs) < var(&mc_runs),
            "rhh var {} vs mc var {}",
            var(&rhh_runs),
            var(&mc_runs)
        );
    }

    #[test]
    fn threshold_100_behaves_like_mc() {
        // Fig. 16: a huge threshold collapses RHH into plain conditional MC.
        let g = diamond();
        let exact = exact_reliability(&g, NodeId(0), NodeId(3));
        let mut rhh = RecursiveSampling::with_threshold(Arc::clone(&g), 100_000);
        let mut rng = ChaCha8Rng::seed_from_u64(44);
        let est = rhh.estimate(NodeId(0), NodeId(3), 50_000, &mut rng);
        assert!((est.reliability - exact).abs() < 0.02);
    }

    #[test]
    fn memory_reports_recursion_frames() {
        let g = diamond();
        let mut rhh = RecursiveSampling::new(g);
        let mut rng = ChaCha8Rng::seed_from_u64(45);
        let est = rhh.estimate(NodeId(0), NodeId(3), 1000, &mut rng);
        assert!(est.aux_bytes > 0);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn zero_threshold_rejected() {
        let g = diamond();
        let _ = RecursiveSampling::with_threshold(g, 0);
    }
}
