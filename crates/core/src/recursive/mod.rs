//! Recursive (divide-and-conquer) estimators: RHH (§2.4) and RSS (§2.5).
//!
//! Both methods partition the possible-world space by fixing the status of
//! selected edges — a *prefix group* `G(E1, E2)` contains every world that
//! includes all of `E1` and none of `E2` (Eq. 6-9) — and recurse with sample
//! budgets allocated proportionally to group probabilities, which provably
//! reduces estimator variance below plain MC.
//!
//! The shared [`state::RecState`] tracks the inclusion/exclusion overlay
//! with O(1) undo, the set of nodes reached from `s` through included
//! edges, and the conditional MC fallback used below the sample-size
//! threshold.

pub mod rhh;
pub mod rss;
pub(crate) mod state;

pub use rhh::RecursiveSampling;
pub use rss::RecursiveStratified;
