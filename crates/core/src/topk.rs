//! Top-k reliability search: find the `k` nodes with the highest
//! reliability from a source `s`.
//!
//! This is the query BFS Sharing was originally designed for (Zhu et
//! al., ICDM'15 — §2.3 of the paper notes the s-t adaptation). The index
//! answers it almost for free: one shared-BFS pass computes `I_v` for
//! *every* reached node, and the answer is the k largest popcounts. A
//! plain-MC variant is provided as the unindexed baseline.

use crate::bfs_sharing::BfsSharingIndex;
use crate::sampler::coin;
use rand::RngCore;
use relcomp_ugraph::traversal::VisitSet;
use relcomp_ugraph::{NodeId, UncertainGraph};
use std::collections::VecDeque;

/// A node with its estimated reliability from the query source.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TargetScore {
    /// The target node.
    pub node: NodeId,
    /// Estimated `R(s, node)`.
    pub reliability: f64,
}

/// Top-k reliable targets via the BFS-Sharing index: one fixpoint pass
/// over `worlds <= L` pre-sampled worlds, then rank popcounts.
///
/// `s` itself is excluded from the result (its reliability is trivially 1).
pub fn top_k_targets_indexed(
    graph: &UncertainGraph,
    index: &BfsSharingIndex,
    s: NodeId,
    k: usize,
    worlds: usize,
) -> Vec<TargetScore> {
    assert!(graph.contains_node(s), "source out of range");
    assert!(
        worlds <= index.num_worlds(),
        "requested {worlds} worlds but index holds {}",
        index.num_worlds()
    );
    assert!(worlds > 0, "need at least one world");
    let n = graph.num_nodes();
    let words = worlds.div_ceil(64);
    let last_mask: u64 = if worlds % 64 == 0 {
        !0
    } else {
        (1u64 << (worlds % 64)) - 1
    };

    let mut bits: Vec<u64> = vec![0; n * words];
    let mut touched = vec![false; n];
    for w in 0..words {
        bits[s.index() * words + w] = if w + 1 == words { last_mask } else { !0 };
    }
    touched[s.index()] = true;

    let mut queue = VecDeque::new();
    let mut in_queue = vec![false; n];
    queue.push_back(s);
    in_queue[s.index()] = true;
    while let Some(v) = queue.pop_front() {
        in_queue[v.index()] = false;
        for (e, w) in graph.out_edges(v) {
            let edge_words = index.edge_words(e);
            let mut changed = false;
            for i in 0..words {
                let add = bits[v.index() * words + i] & edge_words[i];
                let cur = bits[w.index() * words + i];
                if cur | add != cur {
                    bits[w.index() * words + i] = cur | add;
                    changed = true;
                }
            }
            if changed {
                touched[w.index()] = true;
                if !in_queue[w.index()] {
                    in_queue[w.index()] = true;
                    queue.push_back(w);
                }
            }
        }
    }

    let mut scores: Vec<TargetScore> = (0..n)
        .filter(|&i| touched[i] && i != s.index())
        .map(|i| {
            let ones: u32 = bits[i * words..(i + 1) * words]
                .iter()
                .map(|w| w.count_ones())
                .sum();
            TargetScore {
                node: NodeId::from_index(i),
                reliability: ones as f64 / worlds as f64,
            }
        })
        .collect();
    scores.sort_by(|a, b| {
        b.reliability
            .partial_cmp(&a.reliability)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.node.cmp(&b.node))
    });
    scores.truncate(k);
    scores
}

/// Top-k reliable targets via plain MC: sample `samples` worlds, count
/// per-node reachability with a lazily-sampled BFS per world.
pub fn top_k_targets_mc(
    graph: &UncertainGraph,
    s: NodeId,
    k: usize,
    samples: usize,
    rng: &mut dyn RngCore,
) -> Vec<TargetScore> {
    assert!(graph.contains_node(s), "source out of range");
    assert!(samples > 0, "need at least one sample");
    let n = graph.num_nodes();
    let mut hits = vec![0u32; n];
    let mut visited = VisitSet::new(n);
    let mut queue = VecDeque::new();
    for _ in 0..samples {
        visited.reset();
        visited.insert(s);
        queue.clear();
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for (e, w) in graph.out_edges(v) {
                if !visited.contains(w) && coin(rng, graph.prob(e).value()) {
                    visited.insert(w);
                    hits[w.index()] += 1;
                    queue.push_back(w);
                }
            }
        }
    }
    let mut scores: Vec<TargetScore> = (0..n)
        .filter(|&i| hits[i] > 0)
        .map(|i| TargetScore {
            node: NodeId::from_index(i),
            reliability: hits[i] as f64 / samples as f64,
        })
        .collect();
    scores.sort_by(|a, b| {
        b.reliability
            .partial_cmp(&a.reliability)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.node.cmp(&b.node))
    });
    scores.truncate(k);
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use relcomp_ugraph::GraphBuilder;

    /// s -> a (0.9), s -> b (0.5), a -> c (0.9): expected ranking
    /// a (0.9), c (0.81), b (0.5).
    fn star() -> UncertainGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.9).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.5).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.9).unwrap();
        b.build()
    }

    #[test]
    fn indexed_ranking_matches_truth() {
        let g = star();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let index = BfsSharingIndex::build(&g, 40_000, &mut rng);
        let top = top_k_targets_indexed(&g, &index, NodeId(0), 3, 40_000);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].node, NodeId(1));
        assert_eq!(top[1].node, NodeId(3));
        assert_eq!(top[2].node, NodeId(2));
        assert!((top[0].reliability - 0.9).abs() < 0.01);
        assert!((top[1].reliability - 0.81).abs() < 0.01);
        assert!((top[2].reliability - 0.5).abs() < 0.01);
    }

    #[test]
    fn mc_ranking_matches_indexed() {
        let g = star();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let top = top_k_targets_mc(&g, NodeId(0), 3, 40_000, &mut rng);
        assert_eq!(top[0].node, NodeId(1));
        assert_eq!(top[1].node, NodeId(3));
        assert_eq!(top[2].node, NodeId(2));
    }

    #[test]
    fn k_larger_than_reachable_truncates() {
        let g = star();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let top = top_k_targets_mc(&g, NodeId(1), 10, 500, &mut rng);
        assert_eq!(top.len(), 1); // only node 3 reachable from 1
        assert_eq!(top[0].node, NodeId(3));
    }

    #[test]
    fn source_is_excluded() {
        let g = star();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let index = BfsSharingIndex::build(&g, 1000, &mut rng);
        let top = top_k_targets_indexed(&g, &index, NodeId(0), 10, 1000);
        assert!(top.iter().all(|ts| ts.node != NodeId(0)));
    }

    #[test]
    fn prefix_worlds_supported() {
        let g = star();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let index = BfsSharingIndex::build(&g, 1000, &mut rng);
        let top = top_k_targets_indexed(&g, &index, NodeId(0), 1, 700);
        assert_eq!(top[0].node, NodeId(1));
    }
}
