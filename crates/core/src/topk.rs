//! Top-k reliability search: find the `k` nodes with the highest
//! reliability from a source `s`.
//!
//! This is the query BFS Sharing was originally designed for (Zhu et
//! al., ICDM'15 — §2.3 of the paper notes the s-t adaptation). The index
//! answers it almost for free: one shared-BFS pass computes `I_v` for
//! *every* reached node, and the answer is the k largest popcounts. A
//! plain-MC variant is provided as the unindexed baseline.
//!
//! The scalar MC loop here is the reference implementation; the served
//! and parallel paths (`ParallelSampler::top_k_targets_with`) run the
//! same search through the packed 64-world kernel of [`crate::packed`],
//! scoring every node of each batch's reached union at once.

use crate::bfs_sharing::BfsSharingIndex;
use crate::sampler::coin;
use crate::session::{should_stop, Convergence, SampleBudget, StopReason};
use rand::RngCore;
use relcomp_ugraph::traversal::{reachable_set, VisitSet};
use relcomp_ugraph::{NodeId, UncertainGraph};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// A node with its estimated reliability from the query source.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TargetScore {
    /// The target node.
    pub node: NodeId,
    /// Estimated `R(s, node)`.
    pub reliability: f64,
}

/// Outcome of a budget-driven top-k search ([`top_k_targets_with`] and
/// the parallel `ParallelSampler::top_k_targets_with`).
#[derive(Clone, Debug)]
pub struct TopKResult {
    /// The k best targets, ranked by estimated reliability (descending,
    /// ties broken by node id).
    pub scores: Vec<TargetScore>,
    /// Possible worlds actually sampled.
    pub samples: usize,
    /// Why sampling stopped.
    pub stop_reason: StopReason,
    /// Wilson CI half-width of the *boundary* (k-th ranked) target's
    /// reliability at the budget's confidence — the quantity the adaptive
    /// stopping rule certifies. `None` when unmeasurable.
    pub half_width: Option<f64>,
    /// Wall-clock time of the search.
    pub elapsed: Duration,
}

/// Rank per-node hit counts into the top-k score list: nodes with at
/// least one hit, `s` excluded, sorted by reliability descending with
/// node-id tie-break, truncated to `k`. Shared by the single-threaded
/// session and the parallel sharded path so the two can never disagree
/// on ranking semantics.
pub(crate) fn rank_hits(hits: &[u64], s: NodeId, k: usize, samples: usize) -> Vec<TargetScore> {
    let mut scores: Vec<TargetScore> = hits
        .iter()
        .enumerate()
        .filter(|&(i, &h)| h > 0 && i != s.index())
        .map(|(i, &h)| TargetScore {
            node: NodeId::from_index(i),
            reliability: h as f64 / samples as f64,
        })
        .collect();
    scores.sort_by(|a, b| {
        b.reliability
            .partial_cmp(&a.reliability)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.node.cmp(&b.node))
    });
    scores.truncate(k);
    scores
}

/// The convergence tracker of the top-k *boundary*: Wilson statistics of
/// the `boundary`-th largest hit count among candidate targets. The
/// adaptive session stops once this score's relative half-width meets
/// the budget's target — the weakest-certified answer in the returned
/// ranking. A pure function of `(hits, samples)`, so the single-threaded
/// batch loop and the parallel shard-group barriers compute identical
/// stopping decisions. `scratch` is a reusable buffer: the check runs at
/// every batch barrier, and reallocating an `n`-element vector each time
/// would dominate the bookkeeping on large graphs.
pub(crate) fn boundary_tracker(
    hits: &[u64],
    s: NodeId,
    boundary: usize,
    samples: usize,
    confidence: f64,
    scratch: &mut Vec<u64>,
) -> Convergence {
    let mut tracker = Convergence::new(confidence);
    if samples == 0 || boundary == 0 {
        return tracker;
    }
    scratch.clear();
    scratch.extend(
        hits.iter()
            .enumerate()
            .filter(|&(i, _)| i != s.index())
            .map(|(_, &h)| h),
    );
    let idx = boundary.min(scratch.len()) - 1;
    let (_, kth, _) = scratch.select_nth_unstable_by(idx, |a, b| b.cmp(a));
    tracker.observe_hits(*kth as usize, samples);
    tracker
}

/// How many distinct targets (excluding `s`) the certain topology can
/// reach at all — the most a ranking from `s` can ever contain, and
/// therefore the boundary rank the adaptive stopping rule certifies when
/// the caller asks for more.
pub(crate) fn reachable_targets(graph: &UncertainGraph, s: NodeId) -> usize {
    reachable_set(graph, s).len() - 1
}

/// Top-k reliable targets via lazily-sampled MC worlds under a streaming
/// [`SampleBudget`]: draw a batch of worlds, update per-node hit counts,
/// and stop once the budget is exhausted or the boundary (k-th ranked)
/// score's relative half-width meets the target. Under
/// [`SampleBudget::fixed`] the coin stream — and therefore the ranking —
/// is bit-identical to the historical [`top_k_targets_mc`] loop.
pub fn top_k_targets_with(
    graph: &UncertainGraph,
    s: NodeId,
    k: usize,
    budget: &SampleBudget,
    rng: &mut dyn RngCore,
) -> TopKResult {
    assert!(graph.contains_node(s), "source out of range");
    assert!(k > 0, "k must be positive");
    let start = Instant::now();
    let n = graph.num_nodes();
    let boundary = k.min(reachable_targets(graph, s));
    if boundary == 0 {
        // No reachable target exists: the answer is exactly the empty
        // ranking, with nothing to sample. (A BFS from an out-degree-0
        // source consumes no randomness, so this matches the historical
        // loop's RNG stream too.)
        let (samples, stop_reason) = crate::session::exact_answer_accounting(budget);
        return TopKResult {
            scores: Vec::new(),
            samples,
            stop_reason,
            half_width: Some(0.0),
            elapsed: start.elapsed(),
        };
    }
    let mut hits = vec![0u64; n];
    let mut scratch = Vec::new();
    let mut visited = VisitSet::new(n);
    let mut queue = VecDeque::new();
    let mut samples = 0usize;
    let stop = loop {
        // Fixed budgets have no stopping rule to consult: skip the O(n)
        // boundary-tracker build the cap check can never use.
        let stop = if budget.is_fixed() {
            (samples >= budget.max_samples()).then_some(StopReason::FixedK)
        } else {
            let tracker = boundary_tracker(
                &hits,
                s,
                boundary,
                samples,
                budget.confidence(),
                &mut scratch,
            );
            should_stop(budget, &tracker, samples, start)
        };
        if let Some(stop) = stop {
            break stop;
        }
        let batch = budget.batch().min(budget.max_samples() - samples);
        for _ in 0..batch {
            visited.reset();
            visited.insert(s);
            queue.clear();
            queue.push_back(s);
            while let Some(v) = queue.pop_front() {
                for (e, w) in graph.out_edges(v) {
                    if !visited.contains(w) && coin(rng, graph.prob(e).value()) {
                        visited.insert(w);
                        hits[w.index()] += 1;
                        queue.push_back(w);
                    }
                }
            }
        }
        samples += batch;
    };
    let tracker = boundary_tracker(
        &hits,
        s,
        boundary,
        samples,
        budget.confidence(),
        &mut scratch,
    );
    let hw = tracker.half_width();
    TopKResult {
        scores: rank_hits(&hits, s, k, samples),
        samples,
        stop_reason: stop,
        half_width: hw.is_finite().then_some(hw),
        elapsed: start.elapsed(),
    }
}

/// Top-k reliable targets via the BFS-Sharing index: one fixpoint pass
/// over `worlds <= L` pre-sampled worlds, then rank popcounts.
///
/// `s` itself is excluded from the result (its reliability is trivially 1).
pub fn top_k_targets_indexed(
    graph: &UncertainGraph,
    index: &BfsSharingIndex,
    s: NodeId,
    k: usize,
    worlds: usize,
) -> Vec<TargetScore> {
    assert!(graph.contains_node(s), "source out of range");
    assert!(
        worlds <= index.num_worlds(),
        "requested {worlds} worlds but index holds {}",
        index.num_worlds()
    );
    assert!(worlds > 0, "need at least one world");
    let n = graph.num_nodes();
    let words = worlds.div_ceil(64);
    let last_mask: u64 = if worlds % 64 == 0 {
        !0
    } else {
        (1u64 << (worlds % 64)) - 1
    };

    let mut bits: Vec<u64> = vec![0; n * words];
    let mut touched = vec![false; n];
    for w in 0..words {
        bits[s.index() * words + w] = if w + 1 == words { last_mask } else { !0 };
    }
    touched[s.index()] = true;

    let mut queue = VecDeque::new();
    let mut in_queue = vec![false; n];
    queue.push_back(s);
    in_queue[s.index()] = true;
    while let Some(v) = queue.pop_front() {
        in_queue[v.index()] = false;
        for (e, w) in graph.out_edges(v) {
            let edge_words = index.edge_words(e);
            let mut changed = false;
            for i in 0..words {
                let add = bits[v.index() * words + i] & edge_words[i];
                let cur = bits[w.index() * words + i];
                if cur | add != cur {
                    bits[w.index() * words + i] = cur | add;
                    changed = true;
                }
            }
            if changed {
                touched[w.index()] = true;
                if !in_queue[w.index()] {
                    in_queue[w.index()] = true;
                    queue.push_back(w);
                }
            }
        }
    }

    let mut scores: Vec<TargetScore> = (0..n)
        .filter(|&i| touched[i] && i != s.index())
        .map(|i| {
            let ones: u32 = bits[i * words..(i + 1) * words]
                .iter()
                .map(|w| w.count_ones())
                .sum();
            TargetScore {
                node: NodeId::from_index(i),
                reliability: ones as f64 / worlds as f64,
            }
        })
        .collect();
    scores.sort_by(|a, b| {
        b.reliability
            .partial_cmp(&a.reliability)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.node.cmp(&b.node))
    });
    scores.truncate(k);
    scores
}

/// Top-k reliable targets via plain MC with exactly `samples` worlds — a
/// thin wrapper over [`top_k_targets_with`] with a fixed budget,
/// bit-identical to the historical pre-session loop.
pub fn top_k_targets_mc(
    graph: &UncertainGraph,
    s: NodeId,
    k: usize,
    samples: usize,
    rng: &mut dyn RngCore,
) -> Vec<TargetScore> {
    assert!(samples > 0, "need at least one sample");
    top_k_targets_with(graph, s, k, &SampleBudget::fixed(samples), rng).scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use relcomp_ugraph::GraphBuilder;

    /// s -> a (0.9), s -> b (0.5), a -> c (0.9): expected ranking
    /// a (0.9), c (0.81), b (0.5).
    fn star() -> UncertainGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.9).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.5).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.9).unwrap();
        b.build()
    }

    #[test]
    fn indexed_ranking_matches_truth() {
        let g = star();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let index = BfsSharingIndex::build(&g, 40_000, &mut rng);
        let top = top_k_targets_indexed(&g, &index, NodeId(0), 3, 40_000);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].node, NodeId(1));
        assert_eq!(top[1].node, NodeId(3));
        assert_eq!(top[2].node, NodeId(2));
        assert!((top[0].reliability - 0.9).abs() < 0.01);
        assert!((top[1].reliability - 0.81).abs() < 0.01);
        assert!((top[2].reliability - 0.5).abs() < 0.01);
    }

    #[test]
    fn mc_ranking_matches_indexed() {
        let g = star();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let top = top_k_targets_mc(&g, NodeId(0), 3, 40_000, &mut rng);
        assert_eq!(top[0].node, NodeId(1));
        assert_eq!(top[1].node, NodeId(3));
        assert_eq!(top[2].node, NodeId(2));
    }

    #[test]
    fn k_larger_than_reachable_truncates() {
        let g = star();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let top = top_k_targets_mc(&g, NodeId(1), 10, 500, &mut rng);
        assert_eq!(top.len(), 1); // only node 3 reachable from 1
        assert_eq!(top[0].node, NodeId(3));
    }

    #[test]
    fn source_is_excluded() {
        let g = star();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let index = BfsSharingIndex::build(&g, 1000, &mut rng);
        let top = top_k_targets_indexed(&g, &index, NodeId(0), 10, 1000);
        assert!(top.iter().all(|ts| ts.node != NodeId(0)));
    }

    #[test]
    fn adaptive_topk_stops_early_with_correct_ranking() {
        let g = star();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let result = top_k_targets_with(
            &g,
            NodeId(0),
            3,
            &SampleBudget::adaptive(0.1, 100_000),
            &mut rng,
        );
        assert_eq!(result.stop_reason, StopReason::Converged);
        assert!(
            result.samples < 100_000,
            "stopped early: {}",
            result.samples
        );
        assert_eq!(result.scores[0].node, NodeId(1));
        assert_eq!(result.scores[1].node, NodeId(3));
        assert_eq!(result.scores[2].node, NodeId(2));
        let hw = result.half_width.expect("boundary CI");
        // The boundary is the 3rd score (~0.5): the target was met.
        assert!(hw <= 0.1 * result.scores[2].reliability + 1e-12);
    }

    #[test]
    fn adaptive_topk_with_unreachable_boundary_runs_to_cap() {
        // Only node 3 is reachable from 1; asking for k = 5 certifies the
        // 1-target boundary instead of waiting forever for 5 targets.
        let g = star();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let result = top_k_targets_with(
            &g,
            NodeId(1),
            5,
            &SampleBudget::adaptive(0.1, 50_000),
            &mut rng,
        );
        assert_eq!(result.stop_reason, StopReason::Converged);
        assert_eq!(result.scores.len(), 1);
        assert_eq!(result.scores[0].node, NodeId(3));
    }

    #[test]
    fn isolated_source_answers_empty_without_sampling() {
        let g = star();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        // Node 2 and 3 have no out-edges.
        let fixed = top_k_targets_with(&g, NodeId(2), 4, &SampleBudget::fixed(1000), &mut rng);
        assert!(fixed.scores.is_empty());
        assert_eq!(fixed.samples, 1000, "fixed accounting preserved");
        assert_eq!(fixed.stop_reason, StopReason::FixedK);
        let adaptive = top_k_targets_with(
            &g,
            NodeId(3),
            4,
            &SampleBudget::adaptive(0.1, 1000),
            &mut rng,
        );
        assert!(adaptive.scores.is_empty());
        assert_eq!(adaptive.stop_reason, StopReason::Converged);
        assert_eq!(adaptive.samples, 0, "nothing to certify, nothing drawn");
    }

    #[test]
    fn wrapper_matches_session_scores() {
        let g = star();
        let mut rng_a = ChaCha8Rng::seed_from_u64(21);
        let mut rng_b = ChaCha8Rng::seed_from_u64(21);
        let wrapped = top_k_targets_mc(&g, NodeId(0), 3, 2000, &mut rng_a);
        let session = top_k_targets_with(&g, NodeId(0), 3, &SampleBudget::fixed(2000), &mut rng_b);
        assert_eq!(wrapped, session.scores);
        assert_eq!(session.samples, 2000);
    }

    #[test]
    fn prefix_worlds_supported() {
        let g = star();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let index = BfsSharingIndex::build(&g, 1000, &mut rng);
        let top = top_k_targets_indexed(&g, &index, NodeId(0), 1, 700);
        assert_eq!(top[0].node, NodeId(1));
    }
}
