//! Bit-packed 64-world Monte Carlo sampling.
//!
//! The paper's central finding is that world *sampling* dominates
//! end-to-end cost for every s-t reliability estimator. This module
//! amortizes that cost 64 ways: each pass samples 64 possible worlds into
//! per-edge `u64` masks (bit `b` = world `b`) and runs one word-parallel
//! BFS over all of them at once (see
//! [`relcomp_ugraph::traversal::word_reach_worlds`]).
//!
//! Two mask generators, chosen per edge by [`sample_mask`]:
//!
//! * **Dense bit-compare** (`p > `[`GEOMETRIC_THRESHOLD`]): compare a
//!   uniform bitstream against fixed-point `p` word-parallel, most
//!   significant bit first. Each `next_u64` draw supplies one comparison
//!   bit to all 64 worlds and halves the undecided set, so a full mask
//!   costs ~2 draws in expectation plus one per tie-break round (~8 total
//!   worst-typical) instead of 64 scalar coins.
//! * **Geometric jump** (`p <= `[`GEOMETRIC_THRESHOLD`]): walk the 64 world
//!   bits by sampling the gap to the next *surviving* world from
//!   Geometric(p) — expected `64 p + 1` draws, so rarely-existing edges
//!   cost almost nothing.
//!
//! Masks are generated **lazily and partially** during traversal (the
//! packed analogue of Algorithm 1's lazy edge instantiation): when the
//! BFS probes an edge, only the world bits the traversal can actually use
//! — the candidate set, minus bits already decided earlier in the batch —
//! are drawn, and [`MaskCache`] remembers the decisions for the batch's
//! remainder. Generation cost is therefore proportional to the *useful*
//! probes across the 64 worlds, not to `m` and not even to 64 bits per
//! touched edge. On graphs near the percolation threshold (mean offspring
//! ≈ 1, e.g. `p = 1/out_degree` assignments) this matters a lot: the 64
//! worlds overlap little, and drawing full words would cost *more*
//! randomness than 64 scalar samples.
//!
//! In-batch mask randomness comes from a [`SplitMix64`] stream seeded
//! with one draw of the session's primary RNG per batch, so the primary
//! stream advances by exactly one word per 64 worlds regardless of
//! traversal shape.
//!
//! # Determinism contract
//!
//! A packed 64-world batch consumes exactly one `next_u64` of the
//! session's primary stream (the in-batch [`SplitMix64`] seed), making
//! the batch one indivisible draw: results are deterministic in
//! `(graph, s, t, seed)` but the stream differs from 64 scalar samples.
//! Sessions that mix packed words with a scalar tail (fewer than 64
//! remaining samples) run the tail through the historical scalar loop on
//! the *same* stream — so a fixed budget below 64 samples is bit-identical
//! to [`McSampling`](crate::mc::McSampling).

use crate::estimator::{validate_query, Estimate, Estimator, UpdateOutcome};
use crate::memory::MemoryTracker;
use crate::sampler::coin;
use crate::session::{EstimationSession, SampleBudget};
use rand::{Rng, RngCore};
use relcomp_ugraph::traversal::{
    bfs_reaches, word_reach_all, word_reach_all_sweep, word_reach_within, word_reach_worlds,
    word_reach_worlds_sweep, BfsWorkspace, WordBfsWorkspace, WORLD_WORD_BITS,
};
use relcomp_ugraph::{EdgeId, EdgeUpdate, NodeId, UncertainGraph};
use std::sync::Arc;

/// Worlds per packed batch (the `u64` word width).
pub const WORLD_BATCH: usize = WORLD_WORD_BITS;

/// Edge probability at or below which [`sample_mask`] switches from the
/// dense bit-compare fill to geometric-jump skipping.
///
/// The two paths cost differently per *variate*, not just per word: the
/// dense fill burns ~8 raw draws regardless of `p` (the undecided set
/// halves per draw), while each geometric jump pays for a draw plus an
/// `ln()` and a division — roughly five times a raw [`SplitMix64`] draw.
/// With `64 p + 1` jumps per word, skipping only beats the fixed-cost
/// dense fill for `p` ≲ 0.02; below that its cost keeps falling linearly
/// in `p`, which is where rarely-existing edges become near-free.
pub const GEOMETRIC_THRESHOLD: f64 = 0.02;

// The process-global tally of worlds sampled through the packed kernels vs
// scalar loops now lives in the `relcomp-obs` registry (`obs::sampler`), so
// `stats` and `metrics` report from one source of truth. These wrappers keep
// the historical call sites and public API.
#[inline]
fn note_packed_batch() {
    relcomp_obs::note_packed_samples(WORLD_BATCH as u64);
}

/// Record `n` worlds sampled through a scalar (one-world-at-a-time) loop.
/// Called by the packed session tails and the parallel sampler.
#[inline]
pub fn note_scalar_samples(n: u64) {
    if n > 0 {
        relcomp_obs::note_scalar_samples(n);
    }
}

/// Process-wide `(packed, scalar)` world-sample counts since start.
///
/// Packed counts grow in steps of [`WORLD_BATCH`]; scalar counts cover
/// session tails and any sampling that bypasses the packed kernels.
pub fn sample_counts() -> (u64, u64) {
    relcomp_obs::sample_counts()
}

/// Split a batch of `n` samples into `(packed_words, scalar_tail)`:
/// `packed_words * 64 + scalar_tail == n` with `scalar_tail < 64`.
#[inline]
pub fn split_batch(n: usize) -> (usize, usize) {
    (n / WORLD_BATCH, n % WORLD_BATCH)
}

/// One 64-world existence mask via the dense bit-compare fill: bit `b` is
/// set with probability `p` (to within fixed-point `2^-64` resolution),
/// independently across bits. Exactly equivalent to comparing 64
/// independent uniform bitstreams against `p`, most significant bit first.
pub fn dense_mask<R: Rng + ?Sized>(rng: &mut R, p: f64) -> u64 {
    if p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return !0;
    }
    // p as a 64-bit fixed-point fraction (saturating; exact for dyadic p).
    let p_fixed = (p * (u64::MAX as f64 + 1.0)) as u64;
    let mut undecided = !0u64;
    let mut mask = 0u64;
    for j in (0..64).rev() {
        let r = rng.next_u64();
        // Branch-free select on bit `j` of p: the bit values are as good
        // as random across edges, so a data branch here mispredicts half
        // the time and costs more than both arms. With p's bit set,
        // worlds whose uniform bit is 0 are strictly below p; with it
        // clear, worlds whose uniform bit is 1 are strictly above.
        let sel = ((p_fixed >> j) & 1).wrapping_neg();
        mask |= undecided & !r & sel;
        undecided &= r ^ !sel;
        if undecided == 0 {
            break;
        }
    }
    // Exhausting all 64 bits means uniform == p exactly: not below p.
    mask
}

/// One 64-world existence mask via geometric-jump skipping: jump from one
/// surviving world to the next with Geometric(p) gaps. Distributionally
/// identical to [`dense_mask`] (each bit is an independent Bernoulli(p))
/// but costs `64 p + 1` variates in expectation — the win for small `p`.
pub fn geometric_mask<R: Rng + ?Sized>(rng: &mut R, p: f64) -> u64 {
    if p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return !0;
    }
    // Inverse-CDF jumps as in [`crate::sampler::geometric`], with
    // `ln(1 - p)` hoisted out of the loop: recomputing it per jump
    // doubles the `ln` count, which is most of a jump's cost at small p.
    let denom = (1.0 - p).ln();
    let mut mask = 0u64;
    let mut pos = 0u64;
    loop {
        let u: f64 = 1.0 - rng.gen::<f64>(); // in (0, 1]
        pos += (u.ln() / denom) as u64; // floor; saturating cast guards huge jumps
        if pos >= WORLD_BATCH as u64 {
            break;
        }
        mask |= 1u64 << pos;
        pos += 1;
    }
    mask
}

/// One 64-world existence mask for an edge with probability `p`,
/// dispatching to [`geometric_mask`] below [`GEOMETRIC_THRESHOLD`] and
/// [`dense_mask`] above it.
#[inline]
pub fn sample_mask<R: Rng + ?Sized>(rng: &mut R, p: f64) -> u64 {
    if p <= GEOMETRIC_THRESHOLD {
        geometric_mask(rng, p)
    } else {
        dense_mask(rng, p)
    }
}

/// The cheap in-batch generator behind packed mask drawing (SplitMix64).
///
/// Each packed 64-world batch seeds one `SplitMix64` from a single
/// `next_u64` of the session's primary stream and draws all of the
/// batch's mask randomness from it. Two wins: the primary stream advances
/// by exactly one word per batch regardless of traversal shape, and each
/// variate costs one add plus three xor-shift-multiplies — a fraction of
/// a buffered ChaCha8 word. The packed kernels are draw-bound on dense
/// graphs, so the cheaper generator is a measured part of the per-sample
/// speedup. SplitMix64 is statistically solid for Monte Carlo use;
/// nothing here needs a cryptographic stream.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded with `seed` (all seeds are valid, including 0).
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RngCore for SplitMix64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Per-bit coin threshold: candidate sets with fewer undecided bits than
/// this are drawn bit-by-bit (one variate per bit); at or above it the
/// whole word is settled by [`sample_mask`], whose ~8-draw dense fill
/// beats 8+ individual coins.
const PER_BIT_LIMIT: u32 = 8;

/// Lazy per-batch cache of *partially drawn* edge masks.
///
/// The word-parallel BFS probes an edge with a candidate world-set (the
/// worlds that would newly cross it). Drawing the full 64-world mask on
/// first probe spends randomness on worlds that never reach the edge —
/// near the percolation threshold that more than doubles the draw count
/// and makes packing slower than scalar sampling. Instead the cache
/// tracks per edge which world bits are *decided* and which of those
/// survived, and a probe draws only `cand & !decided`:
///
/// * fewer than [`PER_BIT_LIMIT`] undecided bits: branchless per-bit
///   coins, one variate per bit;
/// * otherwise the rest of the word is settled at once by
///   [`sample_mask`] (dense fill or geometric jumps).
///
/// Re-probes replay decided bits, so an edge stays consistent across the
/// 64 worlds within a batch. Reset is O(edges touched), not O(m):
/// `begin_batch` clears only the edges the previous batch drew.
#[derive(Clone, Debug)]
pub struct MaskCache {
    /// Per-edge `(decided, mask)` pairs, interleaved so a probe's two
    /// random-access words share one cache line — on sparse-regime graphs
    /// the lazy path is probe-bound and the split-array layout paid two
    /// cache misses per first touch.
    slots: Vec<MaskSlot>,
    touched: Vec<EdgeId>,
}

/// One edge's lazy-draw state: which world bits are decided, and which of
/// the decided bits survived.
#[derive(Clone, Copy, Debug, Default)]
struct MaskSlot {
    decided: u64,
    mask: u64,
}

impl MaskCache {
    /// Cache for a graph with `m` edges.
    pub fn new(m: usize) -> Self {
        MaskCache {
            slots: vec![MaskSlot::default(); m],
            touched: Vec::new(),
        }
    }

    /// Start a fresh 64-world batch, forgetting the previous batch's
    /// decisions in O(edges touched), not O(m): only the edges the
    /// previous batch drew are cleared. When the previous batch touched
    /// most of the graph (the dense regime) a wholesale memset beats the
    /// scattered per-edge writes.
    #[inline]
    pub fn begin_batch(&mut self) {
        if self.touched.len() * 2 >= self.slots.len() {
            self.slots.fill(MaskSlot::default());
        } else {
            for &e in &self.touched {
                self.slots[e.index()] = MaskSlot::default();
            }
        }
        self.touched.clear();
    }

    /// The edge's full 64-world existence mask, drawing every undecided
    /// bit now — the dense-batch strategy for supercritical graphs, where
    /// the fixed-point sweep revisits each reached edge a handful of times
    /// and candidate-set bookkeeping costs more than it saves. The first
    /// touch settles the whole word with one [`sample_mask`] call; later
    /// touches replay it from the slot. Edges the sweep never scans are
    /// never drawn, which matters on directed graphs whose worlds reach a
    /// fraction of the nodes. Shares `decided`/`touched` bookkeeping with
    /// [`MaskCache::probe`], so the two can serve the same cache across
    /// batches.
    #[inline]
    pub fn probe_full<R: Rng + ?Sized>(
        &mut self,
        e: EdgeId,
        graph: &UncertainGraph,
        rng: &mut R,
    ) -> u64 {
        let slot = &mut self.slots[e.index()];
        if slot.decided == 0 {
            self.touched.push(e);
            slot.mask = sample_mask(rng, graph.prob(e).value());
            slot.decided = !0;
        } else if slot.decided != !0 {
            // A lazy probe partially decided this edge earlier in the
            // batch (mixed-strategy use); settle the remainder once.
            slot.mask |= sample_mask(rng, graph.prob(e).value()) & !slot.decided;
            slot.decided = !0;
        }
        slot.mask
    }

    /// The edge's existence mask restricted to the candidate worlds
    /// `cand`, drawing any not-yet-decided candidate bits now. Decided
    /// bits replay their earlier outcome, so probes compose into one
    /// consistent 64-world mask per edge per batch.
    #[inline]
    pub fn probe<R: Rng + ?Sized>(&mut self, e: EdgeId, p: f64, cand: u64, rng: &mut R) -> u64 {
        let slot = &mut self.slots[e.index()];
        let undecided = cand & !slot.decided;
        if undecided != 0 {
            if slot.decided == 0 {
                self.touched.push(e);
            }
            if undecided.count_ones() < PER_BIT_LIMIT && p > 0.0 && p < 1.0 {
                // Branchless Bernoulli(p) per candidate bit: set the bit
                // when a fresh uniform word falls below fixed-point p —
                // the same accept rule the dense fill resolves bitwise.
                let p_fixed = (p * (u64::MAX as f64 + 1.0)) as u64;
                let mut drawn = 0u64;
                let mut bits = undecided;
                while bits != 0 {
                    let b = bits & bits.wrapping_neg();
                    drawn |= b & ((rng.next_u64() < p_fixed) as u64).wrapping_neg();
                    bits ^= b;
                }
                slot.mask |= drawn;
                slot.decided |= undecided;
            } else {
                // Settle every still-undecided bit of the word in one go;
                // previously decided bits keep their recorded outcome.
                slot.mask |= sample_mask(rng, p) & !slot.decided;
                slot.decided = !0;
            }
        }
        slot.mask & cand
    }

    /// Approximate resident bytes (for memory accounting).
    pub fn resident_bytes(&self) -> usize {
        self.slots.len() * 16 + self.touched.capacity() * std::mem::size_of::<EdgeId>()
    }
}

/// Mean percolation offspring number (sum of edge probabilities over node
/// count) at or above which [`PackedWorkspace::for_graph`] picks the dense
/// batch strategy. Above ~1 a sampled world has a giant component, batches
/// touch most edges, and the upfront fill + CSR sweep beats lazy probing;
/// well below 1 worlds are shards and lazy probing skips most of the graph.
pub const DENSE_OFFSPRING_THRESHOLD: f64 = 1.25;

/// Reusable state for packed sampling over one graph: the word-parallel
/// BFS workspace plus the edge-mask cache, and the batch strategy chosen
/// for the graph.
#[derive(Clone, Debug)]
pub struct PackedWorkspace {
    words: WordBfsWorkspace,
    masks: MaskCache,
    dense: bool,
}

impl PackedWorkspace {
    /// Workspace for a graph with `n` nodes and `m` edges, using the lazy
    /// (sparse-regime) batch strategy.
    pub fn new(n: usize, m: usize) -> Self {
        PackedWorkspace {
            words: WordBfsWorkspace::new(n),
            masks: MaskCache::new(m),
            dense: false,
        }
    }

    /// Workspace sized for `graph`, choosing the batch strategy from the
    /// graph's mean offspring number (≥ [`DENSE_OFFSPRING_THRESHOLD`] goes
    /// dense). The choice is a pure function of the graph — never of batch
    /// history — so estimates stay deterministic per seed and
    /// [`ParallelSampler`](crate::parallel::ParallelSampler) results stay
    /// bit-identical across thread counts. Both strategies draw each
    /// edge's existence from the same per-edge Bernoulli, so only speed
    /// (and which equally-distributed worlds a given seed yields)
    /// differs.
    pub fn for_graph(graph: &UncertainGraph) -> Self {
        let mut ws = PackedWorkspace::new(graph.num_nodes(), graph.num_edges());
        ws.retune(graph);
        ws
    }

    /// Re-pick the batch strategy for `graph` (same node and edge
    /// counts), e.g. after live probability updates shift the offspring
    /// number across the threshold. O(m).
    pub fn retune(&mut self, graph: &UncertainGraph) {
        let offspring: f64 = graph.edges().map(|(_, _, _, p)| p.value()).sum::<f64>()
            / graph.num_nodes().max(1) as f64;
        self.dense = offspring >= DENSE_OFFSPRING_THRESHOLD;
    }

    /// Whether this workspace uses the dense (full-word draws + fixed-point
    /// sweep) batch strategy for full-reachability batches.
    pub fn dense_mode(&self) -> bool {
        self.dense
    }

    /// Approximate resident bytes (for memory accounting).
    pub fn resident_bytes(&self) -> usize {
        self.words.resident_bytes() + self.masks.resident_bytes()
    }

    /// Resident bytes a fresh workspace would hold, without allocating one.
    pub fn bytes_for(n: usize, m: usize) -> usize {
        WordBfsWorkspace::bytes_for(n) + m * 16
    }
}

/// Sample one packed batch of 64 worlds and count those in which `t` is
/// reachable from `s`. Returns the hit count in `0..=64`. Consumes
/// exactly one `next_u64` of `rng` (the batch's [`SplitMix64`] seed) in
/// either batch strategy.
pub fn packed_reach_worlds<R: Rng + ?Sized>(
    graph: &UncertainGraph,
    s: NodeId,
    t: NodeId,
    ws: &mut PackedWorkspace,
    rng: &mut R,
) -> u32 {
    let PackedWorkspace {
        words,
        masks,
        dense,
    } = ws;
    let mut mask_rng = SplitMix64::new(rng.next_u64());
    masks.begin_batch();
    let reached = if *dense {
        word_reach_worlds_sweep(graph, s, t, words, |e| {
            masks.probe_full(e, graph, &mut mask_rng)
        })
    } else {
        word_reach_worlds(graph, s, t, words, |e, cand| {
            masks.probe(e, graph.prob(e).value(), cand, &mut mask_rng)
        })
    };
    note_packed_batch();
    reached.count_ones()
}

/// Sample one packed batch of 64 worlds and compute full reachability from
/// `s` in each: returns the word BFS workspace, whose `reach()` words
/// (bit `b` of `[v]` set when `v` is reachable in world `b`) and
/// `reached_nodes()` union back multi-target and top-k sampling — scoring
/// iterates the reached union, not all `n` nodes. Consumes exactly one
/// `next_u64` of `rng`.
pub fn packed_sample_worlds<'a, R: Rng + ?Sized>(
    graph: &UncertainGraph,
    s: NodeId,
    ws: &'a mut PackedWorkspace,
    rng: &mut R,
) -> &'a WordBfsWorkspace {
    let PackedWorkspace {
        words,
        masks,
        dense,
    } = ws;
    let mut mask_rng = SplitMix64::new(rng.next_u64());
    masks.begin_batch();
    if *dense {
        word_reach_all_sweep(graph, s, words, |e| {
            masks.probe_full(e, graph, &mut mask_rng)
        });
    } else {
        word_reach_all(graph, s, words, |e, cand| {
            masks.probe(e, graph.prob(e).value(), cand, &mut mask_rng)
        });
    }
    note_packed_batch();
    words
}

/// Sample one packed batch of 64 worlds and count those in which `t` is
/// within `d` hops of `s` (the distance-constrained workload's `R_d`).
/// Consumes exactly one `next_u64` of `rng`. Always probes lazily — the
/// hop bound caps how much of the graph a batch can touch, so the dense
/// fill-everything strategy has nothing to amortize here.
pub fn packed_reach_within<R: Rng + ?Sized>(
    graph: &UncertainGraph,
    s: NodeId,
    t: NodeId,
    d: usize,
    ws: &mut PackedWorkspace,
    rng: &mut R,
) -> u32 {
    let PackedWorkspace { words, masks, .. } = ws;
    masks.begin_batch();
    let mut mask_rng = SplitMix64::new(rng.next_u64());
    let reached = word_reach_within(graph, s, t, d, words, |e, cand| {
        masks.probe(e, graph.prob(e).value(), cand, &mut mask_rng)
    });
    note_packed_batch();
    reached.count_ones()
}

/// Monte Carlo s-t estimator running the packed 64-world kernel inside the
/// standard [`SampleBudget`] session loop.
///
/// Each session batch splits into `batch / 64` packed words plus a scalar
/// tail of `batch % 64` historical lazy-BFS samples from the same RNG
/// stream; adaptive stopping is checked at batch (hence word) boundaries.
/// For fixed budgets below 64 samples the packed path never engages, and
/// the result is bit-identical to [`McSampling`](crate::mc::McSampling).
pub struct PackedMcSampling {
    graph: Arc<UncertainGraph>,
    ws: PackedWorkspace,
    scalar_ws: BfsWorkspace,
}

impl PackedMcSampling {
    /// Create a packed MC estimator over `graph`.
    pub fn new(graph: Arc<UncertainGraph>) -> Self {
        let ws = PackedWorkspace::for_graph(&graph);
        let n = graph.num_nodes();
        PackedMcSampling {
            graph,
            ws,
            scalar_ws: BfsWorkspace::new(n),
        }
    }
}

impl Estimator for PackedMcSampling {
    fn name(&self) -> &'static str {
        // The packed kernel is an implementation of plain MC sampling —
        // same estimator in the paper's tables, faster per world.
        "MC"
    }

    fn estimate_with(
        &mut self,
        s: NodeId,
        t: NodeId,
        budget: &SampleBudget,
        rng: &mut dyn RngCore,
    ) -> Estimate {
        validate_query(&self.graph, s, t);
        let mut session = EstimationSession::begin(budget);

        let mut mem = MemoryTracker::new();
        mem.baseline(self.ws.resident_bytes() + self.scalar_ws.resident_bytes());

        let mut hits = 0usize;
        let graph = &self.graph;
        loop {
            let n = session.next_batch();
            if n == 0 {
                break;
            }
            let (words, tail) = split_batch(n);
            let mut batch_hits = 0usize;
            for _ in 0..words {
                batch_hits += packed_reach_worlds(graph, s, t, &mut self.ws, rng) as usize;
            }
            for _ in 0..tail {
                if bfs_reaches(graph, s, t, &mut self.scalar_ws, |e| {
                    coin(rng, graph.prob(e).value())
                }) {
                    batch_hits += 1;
                }
            }
            note_scalar_samples(tail as u64);
            hits += batch_hits;
            session.record_hits(batch_hits, n);
        }

        session.finish(hits as f64 / session.samples() as f64, &mem)
    }

    fn apply_updates(
        &mut self,
        graph: &Arc<UncertainGraph>,
        _updates: &[EdgeUpdate],
        _rng: &mut dyn RngCore,
    ) -> UpdateOutcome {
        if graph.num_nodes() != self.graph.num_nodes()
            || graph.num_edges() != self.graph.num_edges()
        {
            return UpdateOutcome::Rebuild;
        }
        self.graph = Arc::clone(graph);
        // Probability updates can move the offspring number across the
        // dense threshold; the strategy must stay a pure function of the
        // graph being sampled.
        self.ws.retune(&self.graph);
        UpdateOutcome::Rebound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_reliability;
    use crate::mc::McSampling;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use relcomp_ugraph::GraphBuilder;

    fn diamond() -> Arc<UncertainGraph> {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.8).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.6).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.7).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.5).unwrap();
        Arc::new(b.build())
    }

    #[test]
    fn dense_mask_frequency_matches_p() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for &p in &[0.15, 0.5, 0.85] {
            let n = 20_000;
            let ones: u32 = (0..n).map(|_| dense_mask(&mut rng, p).count_ones()).sum();
            let freq = ones as f64 / (n as f64 * 64.0);
            assert!((freq - p).abs() < 0.01, "p={p}: freq {freq}");
        }
    }

    #[test]
    fn geometric_mask_frequency_matches_p() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for &p in &[0.01, 0.05, 0.1] {
            let n = 40_000;
            let ones: u32 = (0..n)
                .map(|_| geometric_mask(&mut rng, p).count_ones())
                .sum();
            let freq = ones as f64 / (n as f64 * 64.0);
            assert!((freq - p).abs() < 0.005, "p={p}: freq {freq}");
        }
    }

    #[test]
    fn masks_handle_degenerate_probabilities() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert_eq!(dense_mask(&mut rng, 0.0), 0);
        assert_eq!(dense_mask(&mut rng, 1.0), !0);
        assert_eq!(geometric_mask(&mut rng, 0.0), 0);
        assert_eq!(geometric_mask(&mut rng, 1.0), !0);
    }

    #[test]
    fn dense_mask_bit_positions_are_unbiased() {
        // Every bit position should carry probability p, not just the
        // aggregate popcount.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let p = 0.3;
        let n = 50_000;
        let mut per_bit = [0u32; 64];
        for _ in 0..n {
            let m = dense_mask(&mut rng, p);
            for (b, slot) in per_bit.iter_mut().enumerate() {
                *slot += ((m >> b) & 1) as u32;
            }
        }
        for (b, &ones) in per_bit.iter().enumerate() {
            let freq = ones as f64 / n as f64;
            assert!((freq - p).abs() < 0.02, "bit {b}: freq {freq}");
        }
    }

    #[test]
    fn mask_cache_replays_within_a_batch_and_refreshes_across() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut cache = MaskCache::new(2);
        cache.begin_batch();
        let a = cache.probe(EdgeId(0), 0.5, !0, &mut rng);
        let b = cache.probe(EdgeId(0), 0.5, !0, &mut rng);
        assert_eq!(a, b, "same batch must replay the decided mask");
        // A narrower re-probe replays the matching slice.
        let lo = cache.probe(EdgeId(0), 0.5, 0xFFFF, &mut rng);
        assert_eq!(lo, a & 0xFFFF);
        cache.begin_batch();
        let c = cache.probe(EdgeId(0), 0.5, !0, &mut rng);
        // With overwhelming probability a fresh 64-bit draw differs.
        assert_ne!(a, c, "new batch must redraw");
    }

    #[test]
    fn mask_cache_partial_probes_compose_consistently() {
        // Probing world subsets in pieces (exercising both the per-bit
        // coin path and the full-word settle path) must agree with the
        // union probe of the same batch.
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let mut cache = MaskCache::new(1);
        for p in [0.015, 0.3, 0.9] {
            cache.begin_batch();
            let few = cache.probe(EdgeId(0), p, 0b101, &mut rng); // per-bit path
            let more = cache.probe(EdgeId(0), p, 0xFF00, &mut rng); // full-word path
            let all = cache.probe(EdgeId(0), p, !0, &mut rng);
            assert_eq!(all & 0b101, few, "p={p}");
            assert_eq!(all & 0xFF00, more, "p={p}");
        }
    }

    #[test]
    fn mask_cache_partial_probes_are_unbiased() {
        // Per-bit frequency must stay p whether bits are drawn by the
        // branchless coin path or the full-word generators.
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut cache = MaskCache::new(1);
        let p = 0.3;
        let n = 30_000;
        let mut ones = 0u64;
        for _ in 0..n {
            cache.begin_batch();
            // Three-bit probe first (coin path), then the remainder.
            let lo = cache.probe(EdgeId(0), p, 0b111, &mut rng);
            let hi = cache.probe(EdgeId(0), p, !0b111, &mut rng);
            ones += u64::from((lo | hi).count_ones());
        }
        let freq = ones as f64 / (n as f64 * 64.0);
        assert!((freq - p).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn mask_cache_degenerate_probabilities() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let mut cache = MaskCache::new(2);
        cache.begin_batch();
        assert_eq!(cache.probe(EdgeId(0), 0.0, 0b11, &mut rng), 0);
        assert_eq!(cache.probe(EdgeId(1), 1.0, 0b11, &mut rng), 0b11);
    }

    #[test]
    fn splitmix_streams_are_deterministic_and_distinct() {
        use rand::RngCore;
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = SplitMix64::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn packed_estimate_converges_to_exact() {
        let g = diamond();
        let exact = exact_reliability(&g, NodeId(0), NodeId(3));
        let mut packed = PackedMcSampling::new(Arc::clone(&g));
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let est = packed.estimate(NodeId(0), NodeId(3), 60_000, &mut rng);
        assert!(est.is_valid());
        assert!(
            (est.reliability - exact).abs() < 0.01,
            "{} vs {exact}",
            est.reliability
        );
    }

    #[test]
    fn packed_fixed_k_below_word_width_is_bit_identical_to_scalar() {
        let g = diamond();
        for k in [1usize, 7, 63] {
            let mut scalar = McSampling::new(Arc::clone(&g));
            let mut packed = PackedMcSampling::new(Arc::clone(&g));
            let mut r1 = ChaCha8Rng::seed_from_u64(7);
            let mut r2 = ChaCha8Rng::seed_from_u64(7);
            let a = scalar.estimate(NodeId(0), NodeId(3), k, &mut r1);
            let b = packed.estimate(NodeId(0), NodeId(3), k, &mut r2);
            assert_eq!(a.reliability.to_bits(), b.reliability.to_bits(), "k={k}");
        }
    }

    #[test]
    fn packed_s_equals_t_and_disconnected() {
        let g = diamond();
        let mut packed = PackedMcSampling::new(Arc::clone(&g));
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        assert_eq!(
            packed
                .estimate(NodeId(2), NodeId(2), 320, &mut rng)
                .reliability,
            1.0
        );
        assert_eq!(
            packed
                .estimate(NodeId(3), NodeId(0), 320, &mut rng)
                .reliability,
            0.0
        );
    }

    fn dense_diamond() -> Arc<UncertainGraph> {
        // Diamond plus a bidirected chord: sum(p)/n = 5.4/4 = 1.35, past
        // the dense threshold.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.8).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.6).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.7).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.5).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.9).unwrap();
        b.add_edge(NodeId(2), NodeId(1), 0.9).unwrap();
        b.add_edge(NodeId(3), NodeId(0), 1.0).unwrap();
        Arc::new(b.build())
    }

    #[test]
    fn for_graph_picks_mode_from_offspring_number() {
        assert!(!PackedWorkspace::for_graph(&diamond()).dense_mode());
        assert!(PackedWorkspace::for_graph(&dense_diamond()).dense_mode());
    }

    #[test]
    fn dense_batches_converge_to_exact() {
        let g = dense_diamond();
        let exact = exact_reliability(&g, NodeId(0), NodeId(3));
        let mut ws = PackedWorkspace::for_graph(&g);
        assert!(ws.dense_mode());
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let batches = 1500u32;
        let hits: u32 = (0..batches)
            .map(|_| packed_reach_worlds(&g, NodeId(0), NodeId(3), &mut ws, &mut rng))
            .sum();
        let freq = hits as f64 / (batches as f64 * 64.0);
        assert!((freq - exact).abs() < 0.01, "{freq} vs {exact}");
    }

    #[test]
    fn dense_and_lazy_strategies_agree_in_distribution() {
        // Force both strategies onto the same graph: each must hit the
        // exact reliability, i.e. the strategies draw the same per-edge
        // Bernoullis (only the world stream differs).
        let g = diamond();
        let exact = exact_reliability(&g, NodeId(0), NodeId(3));
        for dense in [false, true] {
            let mut ws = PackedWorkspace::for_graph(&g);
            ws.dense = dense;
            let mut rng = ChaCha8Rng::seed_from_u64(14);
            let batches = 1500u32;
            let hits: u32 = (0..batches)
                .map(|_| packed_reach_worlds(&g, NodeId(0), NodeId(3), &mut ws, &mut rng))
                .sum();
            let freq = hits as f64 / (batches as f64 * 64.0);
            assert!(
                (freq - exact).abs() < 0.01,
                "dense={dense}: {freq} vs {exact}"
            );
        }
    }

    #[test]
    fn dense_sample_worlds_matches_st_kernel() {
        // Full-reachability batches on the dense path must report the
        // same per-world hit structure the s-t kernel distribution does.
        let g = dense_diamond();
        let exact = exact_reliability(&g, NodeId(0), NodeId(3));
        let mut ws = PackedWorkspace::for_graph(&g);
        let mut rng = ChaCha8Rng::seed_from_u64(15);
        let batches = 1500u32;
        let mut hits = 0u32;
        for _ in 0..batches {
            let words = packed_sample_worlds(&g, NodeId(0), &mut ws, &mut rng);
            hits += words.reach()[NodeId(3).index()].count_ones();
        }
        let freq = hits as f64 / (batches as f64 * 64.0);
        assert!((freq - exact).abs() < 0.01, "{freq} vs {exact}");
    }

    #[test]
    fn probe_full_replays_and_resets_like_probe() {
        // Full-word draws must share batch semantics with lazy probes:
        // replay within a batch, compose with partial probes, and clear
        // on begin_batch so stale bits never leak into the next batch.
        let g = dense_diamond();
        let mut cache = MaskCache::new(g.num_edges());
        let mut rng = ChaCha8Rng::seed_from_u64(16);
        let full = cache.probe_full(EdgeId(6), &g, &mut rng);
        assert_eq!(full, !0, "p=1.0 edge must fill every world");
        assert_eq!(cache.probe_full(EdgeId(6), &g, &mut rng), full);
        // A lazy probe after a full draw replays the same bits.
        assert_eq!(cache.probe(EdgeId(6), 1.0, 0xff, &mut rng), full & 0xff);
        // A full draw after a partial lazy probe keeps the decided bits.
        let part = cache.probe(EdgeId(0), g.prob(EdgeId(0)).value(), 0xf, &mut rng);
        let whole = cache.probe_full(EdgeId(0), &g, &mut rng);
        assert_eq!(whole & 0xf, part);
        assert_eq!(cache.probe_full(EdgeId(0), &g, &mut rng), whole);
        cache.begin_batch();
        // After the reset the p=1.0 edge redraws (still all-ones), and a
        // p=0 lazy probe of a previously full edge sees nothing stale.
        assert_eq!(cache.probe(EdgeId(6), 0.0, !0, &mut rng), 0);
    }

    #[test]
    fn sample_counters_advance() {
        let g = diamond();
        let (p0, s0) = sample_counts();
        let mut packed = PackedMcSampling::new(Arc::clone(&g));
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let _ = packed.estimate(NodeId(0), NodeId(3), 100, &mut rng);
        let (p1, s1) = sample_counts();
        assert!(p1 >= p0 + 64, "packed counter should grow by a word");
        assert!(s1 >= s0 + 36, "scalar tail should be counted");
    }
}
