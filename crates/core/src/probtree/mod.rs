//! ProbTree indexing (§2.7, Algorithms 7–8 of the paper; originally Maniu,
//! Cheng & Senellart, TODS'17), FWD (fixed-width) variant with `w = 2`.
//!
//! ## Index construction (Algorithm 7)
//!
//! 1. **Fixed-width tree decomposition** over the undirected skeleton of
//!    the graph: repeatedly pick a node with (undirected) degree at most
//!    `w`, move it and all its incident probabilistic edges into a new
//!    *bag*, and re-connect its neighbors with a placeholder pair that the
//!    bag will later fill with pre-computed reliabilities.
//! 2. **Tree building**: a bag's parent is the bag (or the root) that later
//!    absorbs its placeholder pair.
//! 3. **Bottom-up pre-computation**: for each bag with covered node `v` and
//!    boundary nodes `{a, b}`, the upward virtual edge probability is
//!    `p(a->b) = 1 - (1 - p_direct(a->b)) * (1 - p(a->v) * p(v->b))` — the
//!    paper's reliability-only O(w^2) shortcut ("Our adaptation in
//!    complexity"), replacing the original's full distance distributions.
//!
//! With `w <= 2` every removed subtree touches at most two boundary nodes,
//! all combined edge sets are disjoint, and the index is **lossless**: the
//! query graph's s-t reliability distribution equals the original's.
//!
//! ## Query answering (Algorithm 8)
//!
//! Bags covering `s` or `t` are expanded along their root paths: an
//! expanded bag contributes its own edges (recursively expanding on-path
//! children, substituting the pre-computed virtual edges for off-path
//! children), everything else stays collapsed. MC sampling (or any coupled
//! estimator, §3.8) then runs on the much smaller query graph.

mod decompose;

pub use decompose::{DecompositionStats, ProbTreeIndex};

use crate::estimator::{validate_query, Estimate, Estimator, UpdateOutcome};
use crate::lazy::LazyPropagation;
use crate::mc::McSampling;
use crate::memory::MemoryTracker;
use crate::recursive::{RecursiveSampling, RecursiveStratified};
use crate::session::{EstimationSession, SampleBudget};
use rand::RngCore;
use relcomp_ugraph::{EdgeUpdate, NodeId, UncertainGraph};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which estimator runs on the extracted query graph (§3.8, Table 16).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InnerEstimator {
    /// Plain MC — what the original ProbTree paper used.
    Mc,
    /// Corrected lazy propagation.
    LpPlus,
    /// Recursive sampling.
    Rhh,
    /// Recursive stratified sampling.
    Rss,
}

impl InnerEstimator {
    fn label(self) -> &'static str {
        match self {
            InnerEstimator::Mc => "ProbTree",
            InnerEstimator::LpPlus => "ProbTree+LP+",
            InnerEstimator::Rhh => "ProbTree+RHH",
            InnerEstimator::Rss => "ProbTree+RSS",
        }
    }
}

/// ProbTree estimator: FWD index + per-query graph extraction + inner
/// estimator.
pub struct ProbTree {
    index: ProbTreeIndex,
    inner: InnerEstimator,
    build_time: Duration,
}

impl ProbTree {
    /// The lossless fixed width used throughout the paper.
    pub const WIDTH: usize = 2;

    /// Build the FWD index (w = 2) and answer queries with plain MC.
    pub fn new(graph: Arc<UncertainGraph>) -> Self {
        Self::with_inner(graph, InnerEstimator::Mc)
    }

    /// Build the FWD index with a coupled inner estimator (§3.8).
    pub fn with_inner(graph: Arc<UncertainGraph>, inner: InnerEstimator) -> Self {
        let start = Instant::now();
        let index = ProbTreeIndex::build(graph);
        let build_time = start.elapsed();
        ProbTree {
            index,
            inner,
            build_time,
        }
    }

    /// Offline index construction time (Fig. 13a).
    pub fn index_build_time(&self) -> Duration {
        self.build_time
    }

    /// The underlying index.
    pub fn index(&self) -> &ProbTreeIndex {
        &self.index
    }
}

impl Estimator for ProbTree {
    fn name(&self) -> &'static str {
        self.inner.label()
    }

    fn estimate_with(
        &mut self,
        s: NodeId,
        t: NodeId,
        budget: &SampleBudget,
        rng: &mut dyn RngCore,
    ) -> Estimate {
        validate_query(self.index.graph(), s, t);
        let start = Instant::now();
        let mut mem = MemoryTracker::new();
        mem.baseline(self.index.size_bytes());

        if s == t {
            return EstimationSession::begin(budget).finish_exact(1.0, &mem);
        }

        // Extract the equivalent query graph G(q); the whole budget —
        // including its convergence tracking — runs on the inner
        // estimator over the (much smaller) extracted graph.
        let extraction = self.index.extract_query_graph(s, t);
        mem.alloc(extraction.graph.resident_bytes());

        let qgraph = Arc::new(extraction.graph);
        let (qs, qt) = (extraction.s, extraction.t);
        let inner_est = match self.inner {
            InnerEstimator::Mc => {
                McSampling::new(Arc::clone(&qgraph)).estimate_with(qs, qt, budget, rng)
            }
            InnerEstimator::LpPlus => {
                LazyPropagation::corrected(Arc::clone(&qgraph)).estimate_with(qs, qt, budget, rng)
            }
            InnerEstimator::Rhh => {
                RecursiveSampling::new(Arc::clone(&qgraph)).estimate_with(qs, qt, budget, rng)
            }
            InnerEstimator::Rss => {
                RecursiveStratified::new(Arc::clone(&qgraph)).estimate_with(qs, qt, budget, rng)
            }
        };
        mem.alloc(inner_est.aux_bytes);

        Estimate {
            reliability: inner_est.reliability,
            samples: inner_est.samples,
            elapsed: start.elapsed(),
            aux_bytes: mem.peak(),
            variance: inner_est.variance,
            half_width: inner_est.half_width,
            stop_reason: inner_est.stop_reason,
        }
    }

    fn resident_bytes(&self) -> usize {
        self.index.size_bytes()
    }

    /// Incremental index maintenance: re-aggregate only the decomposition
    /// bags the batch touched (plus their ancestors whose virtual edges
    /// changed) instead of re-running the full decomposition.
    fn apply_updates(
        &mut self,
        graph: &Arc<UncertainGraph>,
        updates: &[EdgeUpdate],
        _rng: &mut dyn RngCore,
    ) -> UpdateOutcome {
        if !graph.same_topology(self.index.graph()) {
            // Insert/delete rebuilds reassign edge ids and can change the
            // decomposition itself.
            return UpdateOutcome::Rebuild;
        }
        let touched = self.index.apply_updates(graph, updates);
        UpdateOutcome::Incremental { touched }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_reliability;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use relcomp_ugraph::generators::erdos_renyi;
    use relcomp_ugraph::probmodel::{Direction, ProbModel};
    use relcomp_ugraph::GraphBuilder;

    /// The paper's Figure 6 example graph (7 nodes, w=2 decomposition).
    fn figure6_graph() -> Arc<UncertainGraph> {
        // Undirected probabilistic edges from Fig. 6(a); we model each as
        // bidirected with the same probability.
        let mut b = GraphBuilder::new(7);
        let edges = [
            (0u32, 1u32, 0.5),
            (0, 2, 0.75),
            (0, 4, 0.75),
            (0, 6, 0.15),
            (1, 2, 0.75),
            (1, 5, 0.75),
            (1, 6, 0.5),
            (2, 6, 0.2),
            (3, 4, 0.5),
            (4, 6, 0.25),
            (5, 6, 0.5),
        ];
        for (u, v, p) in edges {
            b.add_bidirected(NodeId(u), NodeId(v), p).unwrap();
        }
        Arc::new(b.build())
    }

    #[test]
    fn paper_example2_aggregation() {
        // Bag (D) of Example 2: reliability from node 6 to node 1 is
        // 1 - (1 - 0.75)(1 - 0.5 * 0.5) = 0.8125. Exercised through the
        // Probability helper the index uses.
        let direct = 0.75f64;
        let via = 0.5 * 0.5;
        assert!((1.0 - (1.0 - direct) * (1.0 - via) - 0.8125).abs() < 1e-12);
    }

    #[test]
    fn probtree_matches_exact_on_figure6() {
        let g = figure6_graph();
        let mut rng = ChaCha8Rng::seed_from_u64(61);
        let mut pt = ProbTree::new(Arc::clone(&g));
        for (s, t) in [(1u32, 2u32), (3, 5), (0, 3), (6, 4)] {
            let exact = exact_reliability(&g, NodeId(s), NodeId(t));
            let est = pt.estimate(NodeId(s), NodeId(t), 60_000, &mut rng);
            assert!(
                (est.reliability - exact).abs() < 0.012,
                "query {s}->{t}: probtree {} vs exact {exact}",
                est.reliability
            );
        }
    }

    #[test]
    fn probtree_matches_exact_on_random_graphs() {
        // Losslessness check across random sparse digraphs.
        for seed in 0..6u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let pairs = erdos_renyi(10, 12, &mut rng);
            let g = Arc::new(
                ProbModel::UniformChoice {
                    choices: vec![0.3, 0.6, 0.9],
                }
                .apply(10, &pairs, Direction::RandomOriented, &mut rng),
            );
            if g.num_edges() > 24 {
                continue; // exact oracle bound
            }
            let exact = exact_reliability(&g, NodeId(0), NodeId(9));
            let mut pt = ProbTree::new(Arc::clone(&g));
            let est = pt.estimate(NodeId(0), NodeId(9), 60_000, &mut rng);
            assert!(
                (est.reliability - exact).abs() < 0.015,
                "seed {seed}: probtree {} vs exact {exact}",
                est.reliability
            );
        }
    }

    #[test]
    fn coupled_estimators_agree_with_exact() {
        let g = figure6_graph();
        let exact = exact_reliability(&g, NodeId(3), NodeId(5));
        for inner in [
            InnerEstimator::LpPlus,
            InnerEstimator::Rhh,
            InnerEstimator::Rss,
        ] {
            let mut rng = ChaCha8Rng::seed_from_u64(62);
            let mut pt = ProbTree::with_inner(Arc::clone(&g), inner);
            // Recursive inner estimators: average over repeats.
            let reps = 40;
            let sum: f64 = (0..reps)
                .map(|_| {
                    pt.estimate(NodeId(3), NodeId(5), 4000, &mut rng)
                        .reliability
                })
                .sum();
            let mean = sum / reps as f64;
            assert!(
                (mean - exact).abs() < 0.02,
                "{}: {mean} vs exact {exact}",
                pt.name()
            );
        }
    }

    #[test]
    fn names_match_table16() {
        let g = figure6_graph();
        assert_eq!(ProbTree::new(Arc::clone(&g)).name(), "ProbTree");
        assert_eq!(
            ProbTree::with_inner(Arc::clone(&g), InnerEstimator::Rss).name(),
            "ProbTree+RSS"
        );
    }

    #[test]
    fn apply_updates_tracks_new_probabilities() {
        let g = figure6_graph();
        let mut pt = ProbTree::new(Arc::clone(&g));
        let mut rng = ChaCha8Rng::seed_from_u64(65);
        // Weaken both directions of the 1-5 edge; reliability 3 -> 5 drops.
        let updates: Vec<EdgeUpdate> = [(1u32, 5u32), (5, 1)]
            .iter()
            .map(|&(u, v)| {
                EdgeUpdate::new(g.find_edge(NodeId(u), NodeId(v)).unwrap(), 0.05).unwrap()
            })
            .collect();
        let snap = g.with_updated_probs(&updates);
        let outcome = pt.apply_updates(&snap, &updates, &mut rng);
        assert!(
            matches!(outcome, UpdateOutcome::Incremental { .. }),
            "{outcome:?}"
        );
        let exact = exact_reliability(&snap, NodeId(3), NodeId(5));
        let est = pt.estimate(NodeId(3), NodeId(5), 60_000, &mut rng);
        assert!(
            (est.reliability - exact).abs() < 0.012,
            "{} vs exact {exact}",
            est.reliability
        );
    }

    #[test]
    fn apply_updates_demands_shared_topology() {
        let g = figure6_graph();
        let mut pt = ProbTree::new(Arc::clone(&g));
        let mut rng = ChaCha8Rng::seed_from_u64(66);
        let rebuilt = Arc::new(g.with_edits(&[], &[]).unwrap());
        assert_eq!(
            pt.apply_updates(&rebuilt, &[], &mut rng),
            UpdateOutcome::Rebuild
        );
    }

    #[test]
    fn s_equals_t() {
        let g = figure6_graph();
        let mut rng = ChaCha8Rng::seed_from_u64(63);
        let mut pt = ProbTree::new(g);
        assert_eq!(
            pt.estimate(NodeId(2), NodeId(2), 10, &mut rng).reliability,
            1.0
        );
    }

    #[test]
    fn disconnected_pair_is_zero() {
        let mut b = GraphBuilder::new(4);
        b.add_bidirected(NodeId(0), NodeId(1), 0.9).unwrap();
        b.add_bidirected(NodeId(2), NodeId(3), 0.9).unwrap();
        let g = Arc::new(b.build());
        let mut rng = ChaCha8Rng::seed_from_u64(64);
        let mut pt = ProbTree::new(g);
        assert_eq!(
            pt.estimate(NodeId(0), NodeId(3), 2000, &mut rng)
                .reliability,
            0.0
        );
    }
}
