//! FWD (fixed-width, w = 2) tree decomposition and query-graph extraction.
//!
//! See the parent module docs for the algorithm overview. All edges stay
//! *directed* throughout: the decomposition works on the undirected
//! skeleton (which pairs of nodes are adjacent), but bags store directed
//! probabilistic edges and pre-compute directed boundary-pair
//! reliabilities.

use relcomp_ugraph::{
    DuplicatePolicy, EdgeId, EdgeUpdate, GraphBuilder, NodeId, Probability, UncertainGraph,
};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

/// A directed probabilistic edge inside the index (bag or root content).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DirEdge {
    /// Source node (original graph id).
    pub from: NodeId,
    /// Target node (original graph id).
    pub to: NodeId,
    /// Existence probability.
    pub prob: f64,
}

/// One element of a bag's (or the root's) content.
///
/// Raw entries store the original **edge id**, not a probability copy:
/// endpoints and probability are read through the index's graph `Arc` at
/// use time, so an epoch swap ([`ProbTreeIndex::apply_updates`])
/// automatically refreshes every raw edge and only the pre-computed
/// virtual edges need repair.
#[derive(Clone, Copy, Debug)]
enum Entry {
    /// An original edge of the input graph.
    Raw(EdgeId),
    /// A collapsed child bag, standing for its pre-computed boundary-pair
    /// virtual edges.
    Child(usize),
}

/// Sentinel in the edge→bag map for edges living in the root.
const IN_ROOT: u32 = u32::MAX;

/// A decomposition bag: a covered node, its boundary (1 or 2 nodes), the
/// absorbed content, and the upward virtual edges.
struct Bag {
    covered: NodeId,
    boundary: Vec<NodeId>,
    entries: Vec<Entry>,
    /// Virtual directed edges between boundary nodes, pre-computed bottom-up
    /// (empty for single-boundary bags).
    up_edges: Vec<DirEdge>,
    /// Parent bag, or `None` if the bag hangs off the root.
    parent: Option<usize>,
}

/// Summary statistics of a built index (Fig. 13 reporting).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DecompositionStats {
    /// Number of bags created.
    pub num_bags: usize,
    /// Nodes left uncovered (living in the root).
    pub root_nodes: usize,
    /// Entries (raw + collapsed children) in the root.
    pub root_entries: usize,
    /// Maximum bag-to-root chain length.
    pub height: usize,
}

/// The built FWD ProbTree index.
pub struct ProbTreeIndex {
    graph: Arc<UncertainGraph>,
    bags: Vec<Bag>,
    /// For each node: the bag covering it, if any.
    covered_in: Vec<Option<u32>>,
    root_entries: Vec<Entry>,
    /// For each edge: the bag whose content holds it ([`IN_ROOT`] if it
    /// lives in the root). Drives incremental maintenance: an updated
    /// edge dirties exactly this bag.
    edge_bag: Vec<u32>,
}

/// Result of query-graph extraction: a relabeled small uncertain graph and
/// the query endpoints within it.
pub struct QueryExtraction {
    /// The equivalent (for this query) smaller graph `G(q)`.
    pub graph: UncertainGraph,
    /// `s` relabeled into `graph`.
    pub s: NodeId,
    /// `t` relabeled into `graph`.
    pub t: NodeId,
}

impl ProbTreeIndex {
    /// Build the index over `graph` with width 2 (Algorithm 7).
    pub fn build(graph: Arc<UncertainGraph>) -> Self {
        const W: usize = 2;
        let n = graph.num_nodes();

        // Undirected skeleton + pair store of directed content.
        let mut adj: Vec<BTreeSet<NodeId>> = vec![BTreeSet::new(); n];
        let mut store: HashMap<(u32, u32), Vec<Entry>> = HashMap::new();
        for (e, u, v, _) in graph.edges() {
            adj[u.index()].insert(v);
            adj[v.index()].insert(u);
            store.entry(pair_key(u, v)).or_default().push(Entry::Raw(e));
        }

        let mut bags: Vec<Bag> = Vec::new();
        let mut covered_in: Vec<Option<u32>> = vec![None; n];
        let mut removed = vec![false; n];
        // Pendant (single-boundary) bags hang off their boundary *node*:
        // they carry no transit connectivity (no up_edges), but must be
        // absorbed by whichever bag later covers that node — or by the
        // root — so that queries inside them can expand outward.
        let mut node_children: Vec<Vec<usize>> = vec![Vec::new(); n];

        // Min-degree-first candidate heap with lazy revalidation, matching
        // the paper's "for d = 1 to w" preference for low-degree nodes.
        let mut heap: BinaryHeap<Reverse<(usize, u32)>> = BinaryHeap::new();
        for (v, nbrs) in adj.iter().enumerate().take(n) {
            let d = nbrs.len();
            if (1..=W).contains(&d) {
                heap.push(Reverse((d, v as u32)));
            }
        }

        while let Some(Reverse((d, v))) = heap.pop() {
            let vi = v as usize;
            if removed[vi] {
                continue;
            }
            let cur = adj[vi].len();
            if cur == 0 || cur > W {
                continue;
            }
            if cur != d {
                heap.push(Reverse((cur, v)));
                continue;
            }
            let v_node = NodeId(v);
            let boundary: Vec<NodeId> = adj[vi].iter().copied().collect();
            let bag_id = bags.len();

            // Absorb every stored pair among {v} ∪ boundary.
            let mut entries = Vec::new();
            let mut bag_pairs: Vec<(NodeId, NodeId)> =
                boundary.iter().map(|&b| (v_node, b)).collect();
            if boundary.len() == 2 {
                bag_pairs.push((boundary[0], boundary[1]));
            }
            for &(a, b) in &bag_pairs {
                if let Some(content) = store.remove(&pair_key(a, b)) {
                    for entry in content {
                        if let Entry::Child(c) = entry {
                            bags[c].parent = Some(bag_id);
                        }
                        entries.push(entry);
                    }
                }
            }
            // Absorb pendant bags hanging off the covered node.
            for c in node_children[vi].drain(..) {
                bags[c].parent = Some(bag_id);
                entries.push(Entry::Child(c));
            }

            // Remove v from the skeleton.
            for &b in &boundary {
                adj[b.index()].remove(&v_node);
            }
            adj[vi].clear();
            removed[vi] = true;
            covered_in[vi] = Some(bag_id as u32);

            // Re-connect the boundary pair with a placeholder carrying this
            // bag's future virtual edges.
            match boundary.len() {
                2 => {
                    let (a, b) = (boundary[0], boundary[1]);
                    adj[a.index()].insert(b);
                    adj[b.index()].insert(a);
                    store
                        .entry(pair_key(a, b))
                        .or_default()
                        .push(Entry::Child(bag_id));
                }
                1 => {
                    node_children[boundary[0].index()].push(bag_id);
                }
                _ => unreachable!("width-2 bags have 1 or 2 boundary nodes"),
            }

            // Boundary degrees changed: re-seed candidates.
            for &b in &boundary {
                let db = adj[b.index()].len();
                if (1..=W).contains(&db) {
                    heap.push(Reverse((db, b.0)));
                }
            }

            bags.push(Bag {
                covered: v_node,
                boundary,
                entries,
                up_edges: Vec::new(),
                parent: None,
            });
        }

        // Whatever remains lives in the root.
        let mut root_entries: Vec<Entry> = Vec::new();
        let mut remaining: Vec<((u32, u32), Vec<Entry>)> = store.into_iter().collect();
        remaining.sort_unstable_by_key(|&(k, _)| k);
        for (_, content) in remaining {
            root_entries.extend(content);
        }
        // Pendant bags whose anchor node was never covered hang off the
        // root directly.
        for children in &mut node_children {
            for c in children.drain(..) {
                root_entries.push(Entry::Child(c));
            }
        }

        // Edge -> containing bag, for dirtying on updates. Every raw edge
        // lands in exactly one bag's entries or in the root.
        let mut edge_bag = vec![IN_ROOT; graph.num_edges()];
        for (bag_id, bag) in bags.iter().enumerate() {
            for entry in &bag.entries {
                if let Entry::Raw(e) = *entry {
                    edge_bag[e.index()] = bag_id as u32;
                }
            }
        }

        let mut index = ProbTreeIndex {
            graph,
            bags,
            covered_in,
            root_entries,
            edge_bag,
        };
        index.precompute_up_edges();
        index
    }

    /// Bottom-up pre-computation of boundary-pair reliabilities
    /// (Algorithm 7 lines 26-31, with the O(w^2) reliability-only
    /// aggregation). Bags are processed in creation order, which is a
    /// valid bottom-up order: a bag's children are always created earlier.
    fn precompute_up_edges(&mut self) {
        for i in 0..self.bags.len() {
            self.recompute_up_edges(i);
        }
    }

    /// Re-aggregate bag `i`'s upward virtual edges from its current
    /// content; returns whether they changed (the trigger for dirtying
    /// the parent during incremental maintenance).
    fn recompute_up_edges(&mut self, i: usize) -> bool {
        if self.bags[i].boundary.len() != 2 {
            // Pendant bags carry no transit connectivity.
            return false;
        }
        let (a, b) = (self.bags[i].boundary[0], self.bags[i].boundary[1]);
        let v = self.bags[i].covered;
        let mut up = Vec::with_capacity(2);
        for (x, y) in [(a, b), (b, a)] {
            let direct = self.combined_prob(i, x, y);
            let via = self.combined_prob(i, x, v) * self.combined_prob(i, v, y);
            let p = 1.0 - (1.0 - direct) * (1.0 - via);
            if p > 0.0 {
                up.push(DirEdge {
                    from: x,
                    to: y,
                    prob: p.min(1.0),
                });
            }
        }
        let changed = up != self.bags[i].up_edges;
        self.bags[i].up_edges = up;
        changed
    }

    /// Incremental index maintenance for a batch of edge-probability
    /// updates (the Table 15 / §3.8 maintenance cost, generalized):
    /// swap in the new epoch's graph (raw entries read probabilities
    /// through it), then re-aggregate only the decomposition bags whose
    /// content the batch touched, propagating changed virtual edges
    /// upward along the bag tree. Returns the number of bags
    /// re-aggregated — `O(batch · tree height)` instead of the full
    /// `O(n + m)` rebuild.
    ///
    /// `graph` must share this index's topology
    /// ([`UncertainGraph::same_topology`]); callers handle the rebuild
    /// path themselves.
    pub fn apply_updates(&mut self, graph: &Arc<UncertainGraph>, updates: &[EdgeUpdate]) -> usize {
        assert!(
            graph.same_topology(&self.graph),
            "incremental ProbTree maintenance requires a with_updated_probs snapshot"
        );
        self.graph = Arc::clone(graph);
        // Seed the dirty set with the bags holding updated edges (root
        // edges need no aggregation work at all).
        let mut dirty: BTreeSet<usize> = updates
            .iter()
            .map(|u| self.edge_bag[u.edge.index()])
            .filter(|&b| b != IN_ROOT)
            .map(|b| b as usize)
            .collect();
        // Ascending order is bottom-up: a bag's parent is always created
        // (and therefore numbered) later, so propagation only ever
        // inserts ids greater than the one just popped.
        let mut touched = 0usize;
        while let Some(b) = dirty.pop_first() {
            touched += 1;
            if self.recompute_up_edges(b) {
                if let Some(p) = self.bags[b].parent {
                    dirty.insert(p);
                }
            }
        }
        touched
    }

    /// Probability that `from` reaches `to` through bag `i`'s content
    /// restricted to the direct pair (raw parallel edges + collapsed
    /// children), combined independently.
    fn combined_prob(&self, bag: usize, from: NodeId, to: NodeId) -> f64 {
        let mut fail = 1.0;
        for entry in &self.bags[bag].entries {
            match *entry {
                Entry::Raw(e) => {
                    if self.graph.source(e) == from && self.graph.target(e) == to {
                        fail *= 1.0 - self.graph.prob(e).value();
                    }
                }
                Entry::Child(c) => {
                    for e in &self.bags[c].up_edges {
                        if e.from == from && e.to == to {
                            fail *= 1.0 - e.prob;
                        }
                    }
                }
            }
        }
        1.0 - fail
    }

    /// The input graph this index was built over.
    pub fn graph(&self) -> &Arc<UncertainGraph> {
        &self.graph
    }

    /// Decomposition statistics (Fig. 13 reporting).
    pub fn stats(&self) -> DecompositionStats {
        let mut height = 0usize;
        for i in 0..self.bags.len() {
            let mut h = 1usize;
            let mut cur = self.bags[i].parent;
            while let Some(p) = cur {
                h += 1;
                cur = self.bags[p].parent;
            }
            height = height.max(h);
        }
        DecompositionStats {
            num_bags: self.bags.len(),
            root_nodes: self.covered_in.iter().filter(|c| c.is_none()).count(),
            root_entries: self.root_entries.len(),
            height,
        }
    }

    /// Index size in bytes (Fig. 13b): bag metadata, entries, virtual
    /// edges, and the covered-node lookup.
    pub fn size_bytes(&self) -> usize {
        let entry = std::mem::size_of::<Entry>();
        let dir = std::mem::size_of::<DirEdge>();
        let mut total =
            self.covered_in.len() * 5 + self.root_entries.len() * entry + self.edge_bag.len() * 4;
        for bag in &self.bags {
            total += 32 // covered/parent/headers
                + bag.boundary.len() * 4
                + bag.entries.len() * entry
                + bag.up_edges.len() * dir;
        }
        total
    }

    /// Extract the equivalent query graph for `(s, t)` (Algorithm 8):
    /// expand the bags covering `s` and `t` along their root paths,
    /// substitute pre-computed virtual edges for every other collapsed
    /// subtree, and relabel into a dense small graph.
    pub fn extract_query_graph(&self, s: NodeId, t: NodeId) -> QueryExtraction {
        // Bags to expand: root paths of the bags covering s and t.
        let mut expanded: HashSet<usize> = HashSet::new();
        for x in [s, t] {
            let mut cur = self.covered_in[x.index()].map(|b| b as usize);
            while let Some(b) = cur {
                if !expanded.insert(b) {
                    break; // shared ancestry already walked
                }
                cur = self.bags[b].parent;
            }
        }

        let mut edges: Vec<DirEdge> = Vec::new();
        let mut stack: Vec<&Entry> = self.root_entries.iter().collect();
        while let Some(entry) = stack.pop() {
            match *entry {
                Entry::Raw(e) => edges.push(DirEdge {
                    from: self.graph.source(e),
                    to: self.graph.target(e),
                    prob: self.graph.prob(e).value(),
                }),
                Entry::Child(c) => {
                    if expanded.contains(&c) {
                        stack.extend(self.bags[c].entries.iter());
                    } else {
                        edges.extend(self.bags[c].up_edges.iter().copied());
                    }
                }
            }
        }

        // Relabel into a dense node space.
        let mut relabel: HashMap<NodeId, u32> = HashMap::new();
        let fresh = |relabel: &mut HashMap<NodeId, u32>, v: NodeId| -> u32 {
            let next = relabel.len() as u32;
            *relabel.entry(v).or_insert(next)
        };
        let qs = fresh(&mut relabel, s);
        let qt = fresh(&mut relabel, t);
        for e in &edges {
            fresh(&mut relabel, e.from);
            fresh(&mut relabel, e.to);
        }

        let mut builder = GraphBuilder::new(relabel.len())
            .with_edge_capacity(edges.len())
            .duplicate_policy(DuplicatePolicy::CombineOr)
            .allow_self_loops(true);
        for e in &edges {
            builder
                .add_edge_prob(
                    NodeId(relabel[&e.from]),
                    NodeId(relabel[&e.to]),
                    Probability::clamped(e.prob),
                )
                .expect("relabeled nodes are in range");
        }
        QueryExtraction {
            graph: builder.build(),
            s: NodeId(qs),
            t: NodeId(qt),
        }
    }
}

#[inline]
fn pair_key(a: NodeId, b: NodeId) -> (u32, u32) {
    if a.0 <= b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relcomp_ugraph::GraphBuilder;

    fn chain(n: usize, p: f64) -> Arc<UncertainGraph> {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(NodeId(i as u32), NodeId(i as u32 + 1), p)
                .unwrap();
        }
        Arc::new(b.build())
    }

    #[test]
    fn chain_decomposes_fully() {
        // Every node of a path has degree <= 2, so almost everything is
        // covered and the root is tiny.
        let g = chain(10, 0.5);
        let idx = ProbTreeIndex::build(g);
        let stats = idx.stats();
        assert!(stats.num_bags >= 8, "bags {}", stats.num_bags);
        assert!(stats.root_nodes <= 2, "root nodes {}", stats.root_nodes);
    }

    #[test]
    fn chain_virtual_edge_is_product() {
        // Collapsing the middle of a directed chain must yield the product
        // probability end-to-end.
        let g = chain(5, 0.5);
        let idx = ProbTreeIndex::build(Arc::clone(&g));
        let q = idx.extract_query_graph(NodeId(0), NodeId(4));
        // The extraction is equivalent: exact reliability of extraction
        // must be 0.5^4 = 0.0625.
        let exact = crate::exact::exact_reliability(&q.graph, q.s, q.t);
        assert!((exact - 0.0625).abs() < 1e-9, "exact {exact}");
    }

    #[test]
    fn query_graph_prunes_irrelevant_branches() {
        // Lollipop: a 6-node dense core (degree 5 each — never decomposed)
        // with a 30-node pendant path hanging off node 0. A core-to-core
        // query must not drag the pendant path into the query graph.
        let n = 36;
        let mut b = GraphBuilder::new(n);
        for u in 0..6u32 {
            for v in (u + 1)..6u32 {
                b.add_bidirected(NodeId(u), NodeId(v), 0.5).unwrap();
            }
        }
        b.add_bidirected(NodeId(0), NodeId(6), 0.5).unwrap();
        for i in 6..(n as u32 - 1) {
            b.add_bidirected(NodeId(i), NodeId(i + 1), 0.5).unwrap();
        }
        let g = Arc::new(b.build());
        let idx = ProbTreeIndex::build(Arc::clone(&g));
        let q = idx.extract_query_graph(NodeId(1), NodeId(4));
        assert!(q.graph.num_nodes() <= 8, "nodes {}", q.graph.num_nodes());
        // And a query into the pendant tail expands only that branch.
        let q2 = idx.extract_query_graph(NodeId(1), NodeId(35));
        assert!(q2.graph.num_nodes() >= 30, "nodes {}", q2.graph.num_nodes());
    }

    #[test]
    fn star_center_stays_meaningful() {
        // High-degree hub: leaves are covered, hub remains in root.
        let mut b = GraphBuilder::new(6);
        for leaf in 1..6u32 {
            b.add_bidirected(NodeId(0), NodeId(leaf), 0.5).unwrap();
        }
        let g = Arc::new(b.build());
        let idx = ProbTreeIndex::build(Arc::clone(&g));
        let q = idx.extract_query_graph(NodeId(1), NodeId(2));
        let exact = crate::exact::exact_reliability(&q.graph, q.s, q.t);
        // 1 -> 0 -> 2 both 0.5: 0.25.
        assert!((exact - 0.25).abs() < 1e-9, "exact {exact}");
    }

    #[test]
    fn stats_and_size_are_consistent() {
        let g = chain(20, 0.5);
        let idx = ProbTreeIndex::build(g);
        let stats = idx.stats();
        assert!(stats.height >= 1);
        assert!(idx.size_bytes() > 0);
        assert_eq!(
            stats.root_nodes + stats.num_bags,
            20,
            "every node is either covered by exactly one bag or in the root"
        );
    }

    #[test]
    fn apply_updates_matches_fresh_index_on_chain() {
        let g = chain(12, 0.5);
        let mut idx = ProbTreeIndex::build(Arc::clone(&g));
        let e = g.find_edge(NodeId(5), NodeId(6)).unwrap();
        let up = EdgeUpdate::new(e, 0.9).unwrap();
        let snap = g.with_updated_probs(&[up]);
        let touched = idx.apply_updates(&snap, &[up]);
        assert!(touched >= 1, "a covered edge must dirty its bag");
        let fresh = ProbTreeIndex::build(Arc::clone(&snap));
        let a = idx.extract_query_graph(NodeId(0), NodeId(11));
        let b = fresh.extract_query_graph(NodeId(0), NodeId(11));
        let ra = crate::exact::exact_reliability(&a.graph, a.s, a.t);
        let rb = crate::exact::exact_reliability(&b.graph, b.s, b.t);
        assert!((ra - rb).abs() < 1e-12, "incremental {ra} vs fresh {rb}");
        // Ground truth: ten 0.5 edges and one upgraded to 0.9.
        let expect = 0.5f64.powi(10) * 0.9;
        assert!((ra - expect).abs() < 1e-12, "{ra} vs {expect}");
    }

    #[test]
    fn apply_updates_to_root_edges_touches_no_bags() {
        // 5-node clique: every node has degree 4 > w, nothing decomposes,
        // every edge lives in the root and needs zero aggregation work.
        let mut b = GraphBuilder::new(5);
        for u in 0..5u32 {
            for v in (u + 1)..5u32 {
                b.add_bidirected(NodeId(u), NodeId(v), 0.5).unwrap();
            }
        }
        let g = Arc::new(b.build());
        let mut idx = ProbTreeIndex::build(Arc::clone(&g));
        let e = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let up = EdgeUpdate::new(e, 0.9).unwrap();
        let snap = g.with_updated_probs(&[up]);
        assert_eq!(idx.apply_updates(&snap, &[up]), 0);
        // The updated probability still flows into extractions (raw
        // entries read through the swapped graph).
        let q = idx.extract_query_graph(NodeId(0), NodeId(1));
        let exact = crate::exact::exact_reliability(&q.graph, q.s, q.t);
        let fresh = ProbTreeIndex::build(snap);
        let qf = fresh.extract_query_graph(NodeId(0), NodeId(1));
        let exact_fresh = crate::exact::exact_reliability(&qf.graph, qf.s, qf.t);
        assert!((exact - exact_fresh).abs() < 1e-12);
        assert!(exact > 0.9, "upgraded direct edge dominates: {exact}");
    }

    #[test]
    fn isolated_endpoint_query_extracts() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        let g = Arc::new(b.build());
        let idx = ProbTreeIndex::build(g);
        let q = idx.extract_query_graph(NodeId(2), NodeId(0));
        assert!(q.graph.contains_node(q.s));
        assert!(q.graph.contains_node(q.t));
        let exact = crate::exact::exact_reliability(&q.graph, q.s, q.t);
        assert_eq!(exact, 0.0);
    }
}
