//! Uniform construction of the paper's estimator line-up.
//!
//! The evaluation harness compares the six estimators of §2 (plus the
//! buggy LP for Fig. 5 and the ProbTree couplings of §3.8) over identical
//! workloads. [`EstimatorKind`] enumerates them; [`build_estimator`]
//! instantiates any of them over a shared graph with the paper's default
//! parameters (overridable through [`SuiteParams`]).

use crate::bfs_sharing::BfsSharing;
use crate::estimator::Estimator;
use crate::lazy::LazyPropagation;
use crate::packed::PackedMcSampling;
use crate::probtree::{InnerEstimator, ProbTree};
use crate::recursive::{RecursiveSampling, RecursiveStratified};
use rand::RngCore;
use relcomp_ugraph::UncertainGraph;
use std::sync::Arc;

/// Every estimator the paper evaluates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EstimatorKind {
    /// Monte Carlo sampling (§2.2).
    Mc,
    /// BFS-Sharing index (§2.3).
    BfsSharing,
    /// ProbTree index with MC at the root (§2.7).
    ProbTree,
    /// Corrected lazy propagation (§2.6).
    LpPlus,
    /// Original (buggy) lazy propagation — Fig. 5 only.
    LpOriginal,
    /// Recursive sampling (§2.4).
    Rhh,
    /// Recursive stratified sampling (§2.5).
    Rss,
    /// ProbTree coupled with LP+ (§3.8).
    ProbTreeLpPlus,
    /// ProbTree coupled with RHH (§3.8).
    ProbTreeRhh,
    /// ProbTree coupled with RSS (§3.8).
    ProbTreeRss,
}

impl EstimatorKind {
    /// The six headline estimators, in the paper's table order.
    pub const PAPER_SIX: [EstimatorKind; 6] = [
        EstimatorKind::Mc,
        EstimatorKind::BfsSharing,
        EstimatorKind::ProbTree,
        EstimatorKind::LpPlus,
        EstimatorKind::Rhh,
        EstimatorKind::Rss,
    ];

    /// Display name matching the paper's tables.
    pub fn display_name(self) -> &'static str {
        match self {
            EstimatorKind::Mc => "MC",
            EstimatorKind::BfsSharing => "BFS Sharing",
            EstimatorKind::ProbTree => "ProbTree",
            EstimatorKind::LpPlus => "LP+",
            EstimatorKind::LpOriginal => "LP",
            EstimatorKind::Rhh => "RHH",
            EstimatorKind::Rss => "RSS",
            EstimatorKind::ProbTreeLpPlus => "ProbTree+LP+",
            EstimatorKind::ProbTreeRhh => "ProbTree+RHH",
            EstimatorKind::ProbTreeRss => "ProbTree+RSS",
        }
    }

    /// The canonical user-facing spellings [`EstimatorKind::parse`]
    /// accepts, in CLI-documentation order.
    pub const NAMES: [&'static str; 10] = [
        "mc",
        "bfs_sharing",
        "probtree",
        "lp+",
        "lp",
        "rhh",
        "rss",
        "probtree+lp+",
        "probtree+rhh",
        "probtree+rss",
    ];

    /// Parse a user-facing estimator name (CLI flag, wire protocol).
    /// Case-insensitive; accepts the spellings in [`EstimatorKind::NAMES`]
    /// (plus the `bfssharing`/`lpplus` aliases). The error message names
    /// every valid spelling — the one place CLI and wire parsing share.
    pub fn parse(name: &str) -> Result<EstimatorKind, String> {
        Ok(match name.to_ascii_lowercase().as_str() {
            "mc" => EstimatorKind::Mc,
            "bfs_sharing" | "bfssharing" => EstimatorKind::BfsSharing,
            "probtree" => EstimatorKind::ProbTree,
            "lp+" | "lpplus" => EstimatorKind::LpPlus,
            "lp" => EstimatorKind::LpOriginal,
            "rhh" => EstimatorKind::Rhh,
            "rss" => EstimatorKind::Rss,
            "probtree+lp+" => EstimatorKind::ProbTreeLpPlus,
            "probtree+rhh" => EstimatorKind::ProbTreeRhh,
            "probtree+rss" => EstimatorKind::ProbTreeRss,
            _ => {
                return Err(format!(
                    "unknown estimator `{name}` (expected one of: {})",
                    Self::NAMES.join(", ")
                ))
            }
        })
    }

    /// Whether this estimator requires an offline index.
    pub fn is_indexed(self) -> bool {
        matches!(
            self,
            EstimatorKind::BfsSharing
                | EstimatorKind::ProbTree
                | EstimatorKind::ProbTreeLpPlus
                | EstimatorKind::ProbTreeRhh
                | EstimatorKind::ProbTreeRss
        )
    }
}

/// Tunable parameters with the paper's defaults (§3.1.3).
#[derive(Clone, Copy, Debug)]
pub struct SuiteParams {
    /// BFS-Sharing pre-sampled world count (paper: L = 1500 safe bound).
    pub bfs_sharing_worlds: usize,
    /// Recursive-method MC fallback threshold (paper: 5).
    pub recursive_threshold: usize,
    /// RSS stratum parameter r (paper: 50).
    pub rss_r: usize,
}

impl Default for SuiteParams {
    fn default() -> Self {
        SuiteParams {
            bfs_sharing_worlds: BfsSharing::DEFAULT_WORLDS,
            recursive_threshold: RecursiveSampling::DEFAULT_THRESHOLD,
            rss_r: RecursiveStratified::DEFAULT_R,
        }
    }
}

/// Instantiate `kind` over `graph` with `params`. The RNG is used only by
/// index-building estimators (BFS-Sharing world sampling).
///
/// The box is `Send` so long-lived services can park built estimators
/// behind a mutex and answer queries from any worker thread.
pub fn build_estimator(
    kind: EstimatorKind,
    graph: Arc<UncertainGraph>,
    params: SuiteParams,
    rng: &mut dyn RngCore,
) -> Box<dyn Estimator + Send> {
    match kind {
        EstimatorKind::Mc => Box::new(PackedMcSampling::new(graph)),
        EstimatorKind::BfsSharing => {
            Box::new(BfsSharing::new(graph, params.bfs_sharing_worlds, rng))
        }
        EstimatorKind::ProbTree => Box::new(ProbTree::new(graph)),
        EstimatorKind::LpPlus => Box::new(LazyPropagation::corrected(graph)),
        EstimatorKind::LpOriginal => Box::new(LazyPropagation::original(graph)),
        EstimatorKind::Rhh => Box::new(RecursiveSampling::with_threshold(
            graph,
            params.recursive_threshold,
        )),
        EstimatorKind::Rss => Box::new(RecursiveStratified::with_params(
            graph,
            params.recursive_threshold,
            params.rss_r,
        )),
        EstimatorKind::ProbTreeLpPlus => {
            Box::new(ProbTree::with_inner(graph, InnerEstimator::LpPlus))
        }
        EstimatorKind::ProbTreeRhh => Box::new(ProbTree::with_inner(graph, InnerEstimator::Rhh)),
        EstimatorKind::ProbTreeRss => Box::new(ProbTree::with_inner(graph, InnerEstimator::Rss)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_reliability;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use relcomp_ugraph::{GraphBuilder, NodeId};

    fn diamond() -> Arc<UncertainGraph> {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.6).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.7).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.4).unwrap();
        Arc::new(b.build())
    }

    #[test]
    fn all_kinds_build_and_estimate() {
        let g = diamond();
        let exact = exact_reliability(&g, NodeId(0), NodeId(3));
        let mut rng = ChaCha8Rng::seed_from_u64(71);
        let params = SuiteParams {
            bfs_sharing_worlds: 20_000,
            ..Default::default()
        };
        for kind in [
            EstimatorKind::Mc,
            EstimatorKind::BfsSharing,
            EstimatorKind::ProbTree,
            EstimatorKind::LpPlus,
            EstimatorKind::Rhh,
            EstimatorKind::Rss,
            EstimatorKind::ProbTreeLpPlus,
            EstimatorKind::ProbTreeRhh,
            EstimatorKind::ProbTreeRss,
        ] {
            let mut est = build_estimator(kind, Arc::clone(&g), params, &mut rng);
            assert_eq!(est.name(), kind.display_name());
            // Recursive methods need averaging; use repeated medium-K runs.
            let reps = 30;
            let sum: f64 = (0..reps)
                .map(|_| {
                    est.estimate(NodeId(0), NodeId(3), 5000, &mut rng)
                        .reliability
                })
                .sum();
            let mean = sum / reps as f64;
            assert!(
                (mean - exact).abs() < 0.03,
                "{}: {mean} vs exact {exact}",
                kind.display_name()
            );
        }
    }

    #[test]
    fn paper_six_has_expected_members() {
        let names: Vec<_> = EstimatorKind::PAPER_SIX
            .iter()
            .map(|k| k.display_name())
            .collect();
        assert_eq!(
            names,
            vec!["MC", "BFS Sharing", "ProbTree", "LP+", "RHH", "RSS"]
        );
    }

    #[test]
    fn indexed_flags() {
        assert!(EstimatorKind::BfsSharing.is_indexed());
        assert!(EstimatorKind::ProbTree.is_indexed());
        assert!(!EstimatorKind::Mc.is_indexed());
        assert!(!EstimatorKind::Rss.is_indexed());
    }

    #[test]
    fn parse_accepts_every_documented_name() {
        for name in EstimatorKind::NAMES {
            let kind = EstimatorKind::parse(name).expect("documented name parses");
            // Round trip through the display name's lowercase form works
            // for the simple spellings.
            assert!(!kind.display_name().is_empty());
        }
        assert_eq!(EstimatorKind::parse("MC"), Ok(EstimatorKind::Mc));
        assert_eq!(
            EstimatorKind::parse("bfssharing"),
            Ok(EstimatorKind::BfsSharing)
        );
    }

    #[test]
    fn parse_error_lists_valid_names() {
        let err = EstimatorKind::parse("mcmc").unwrap_err();
        assert!(err.contains("unknown estimator `mcmc`"), "{err}");
        for name in EstimatorKind::NAMES {
            assert!(err.contains(name), "error must list `{name}`: {err}");
        }
    }
}
