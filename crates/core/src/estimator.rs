//! The common estimator interface all six algorithms implement.
//!
//! The paper's central methodological complaint is that prior comparisons
//! used *different frameworks, datasets, and metrics*. This trait is the
//! "common system and code base": every estimator answers the same query
//! through the same API and reports the same measurements (estimate,
//! samples used, wall time, auxiliary memory).

use crate::session::{SampleBudget, StopReason};
use rand::RngCore;
use relcomp_ugraph::{EdgeUpdate, NodeId, UncertainGraph};
use std::sync::Arc;
use std::time::Duration;

/// Result of one s-t reliability estimation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// Estimated reliability `R(s, t)` in `[0, 1]`.
    pub reliability: f64,
    /// Number of samples `K` actually consumed.
    pub samples: usize,
    /// Wall-clock time of the estimation call.
    pub elapsed: Duration,
    /// Peak *auxiliary* bytes used during the call (everything beyond the
    /// input graph and any pre-built index — see [`Estimator::resident_bytes`]
    /// for the latter). Analytic accounting; see `memory` module.
    pub aux_bytes: usize,
    /// Estimated variance of `reliability` (the estimator's variance, not
    /// the per-sample variance). `None` when the run had no replication
    /// to measure spread from (a single fixed-`k` recursion).
    pub variance: Option<f64>,
    /// Confidence-interval half-width at the session's confidence level
    /// (Wilson for Bernoulli sampling, normal otherwise); `None` when
    /// unmeasurable — see [`Estimate::variance`].
    pub half_width: Option<f64>,
    /// Why sampling stopped (fixed budget, convergence, caps).
    pub stop_reason: StopReason,
}

impl Estimate {
    /// Sanity-check the estimate invariants (used by tests and the
    /// evaluation harness's debug assertions).
    pub fn is_valid(&self) -> bool {
        (0.0..=1.0).contains(&self.reliability) && self.reliability.is_finite()
    }
}

/// How an estimator absorbed a batch of edge-probability updates
/// ([`Estimator::apply_updates`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateOutcome {
    /// The estimator keeps no per-graph index: it simply rebound to the
    /// new epoch's graph (pure sampling methods).
    Rebound,
    /// The index was maintained incrementally; `touched` counts the index
    /// units recomputed (decomposition bags for ProbTree, edge bit-slices
    /// for BFS-Sharing) — the §3.8 / Table 15 maintenance cost.
    Incremental {
        /// Index units (bags / edge slices) recomputed.
        touched: usize,
    },
    /// The estimator cannot migrate (topology changed, or no incremental
    /// path exists); the caller must rebuild it from scratch over the new
    /// graph.
    Rebuild,
}

impl UpdateOutcome {
    /// Short operator-facing label (wire `update` responses, bench
    /// reports).
    pub fn label(self) -> &'static str {
        match self {
            UpdateOutcome::Rebound => "rebound",
            UpdateOutcome::Incremental { .. } => "incremental",
            UpdateOutcome::Rebuild => "rebuild",
        }
    }
}

/// An s-t reliability estimator over one fixed uncertain graph.
///
/// Implementations are constructed *for a graph* (index-based methods build
/// their index at construction) and may keep reusable workspaces between
/// queries — the paper measures online query cost excluding one-off
/// allocation noise.
pub trait Estimator {
    /// Estimator name as printed in the paper's tables (e.g. `"MC"`,
    /// `"BFS Sharing"`, `"ProbTree"`, `"LP+"`, `"RHH"`, `"RSS"`).
    fn name(&self) -> &'static str;

    /// Estimate `R(s, t)` by streaming sample batches until `budget`
    /// says stop (fixed count, relative-half-width target, sample cap,
    /// wall-time cap — see [`SampleBudget`]).
    ///
    /// Implementations draw in batches (default 256) and consult the
    /// session's [`Convergence`](crate::session::Convergence) tracker
    /// between batches. Under [`SampleBudget::fixed`] the behavior —
    /// reliability, samples, RNG stream — is bit-identical to the
    /// historical fixed-`k` [`Estimator::estimate`].
    ///
    /// # Panics
    /// Implementations panic if `s` or `t` are out of range for the graph
    /// they were built over.
    fn estimate_with(
        &mut self,
        s: NodeId,
        t: NodeId,
        budget: &SampleBudget,
        rng: &mut dyn RngCore,
    ) -> Estimate;

    /// Estimate `R(s, t)` using exactly `k` samples — a thin wrapper over
    /// [`Estimator::estimate_with`] with [`SampleBudget::fixed`]`(k)`.
    ///
    /// # Panics
    /// Panics if `k` is zero or `s`/`t` are out of range.
    fn estimate(&mut self, s: NodeId, t: NodeId, k: usize, rng: &mut dyn RngCore) -> Estimate {
        assert!(k > 0, "sample count must be positive");
        self.estimate_with(s, t, &SampleBudget::fixed(k), rng)
    }

    /// Bytes held *between* queries: pre-built indexes plus long-lived
    /// workspaces. The input graph itself is excluded (all estimators share
    /// it). Default: 0 (pure sampling methods).
    fn resident_bytes(&self) -> usize {
        0
    }

    /// Refresh per-query state so successive queries are independent.
    ///
    /// Only BFS-Sharing needs this (its index *is* the sample set, so it
    /// must be re-drawn between queries — Table 15 of the paper measures
    /// exactly this cost). Default: no-op.
    fn refresh(&mut self, _rng: &mut dyn RngCore) {}

    /// Migrate this estimator to a new graph epoch produced by
    /// [`UncertainGraph::with_updated_probs`] with `updates`.
    ///
    /// `graph` must share the old graph's topology
    /// ([`UncertainGraph::same_topology`]); implementations that maintain
    /// an index repair only the parts `updates` touched instead of
    /// rebuilding (the paper's Table 15 cost, generalized). The default
    /// conservatively reports [`UpdateOutcome::Rebuild`]: the caller
    /// drops the estimator and constructs a fresh one over `graph`.
    fn apply_updates(
        &mut self,
        graph: &Arc<UncertainGraph>,
        updates: &[EdgeUpdate],
        rng: &mut dyn RngCore,
    ) -> UpdateOutcome {
        let _ = (graph, updates, rng);
        UpdateOutcome::Rebuild
    }
}

/// Validate a query against the graph, panicking with a clear message.
pub(crate) fn validate_query(graph: &UncertainGraph, s: NodeId, t: NodeId) {
    assert!(
        graph.contains_node(s),
        "source node {s} out of range (graph has {} nodes)",
        graph.num_nodes()
    );
    assert!(
        graph.contains_node(t),
        "target node {t} out of range (graph has {} nodes)",
        graph.num_nodes()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_validity_bounds() {
        let ok = Estimate {
            reliability: 0.5,
            samples: 10,
            elapsed: Duration::ZERO,
            aux_bytes: 0,
            variance: Some(0.025),
            half_width: Some(0.31),
            stop_reason: StopReason::FixedK,
        };
        assert!(ok.is_valid());
        let bad = Estimate {
            reliability: 1.5,
            ..ok
        };
        assert!(!bad.is_valid());
        let nan = Estimate {
            reliability: f64::NAN,
            ..ok
        };
        assert!(!nan.is_valid());
    }
}
