//! Polynomial-time lower/upper bounds on s-t reliability — the "Theory"
//! branch of the paper's Figure 2 spectrum (Ball & Provan [5], Brecht &
//! Colbourn [7], Bulka & Dugan [8]).
//!
//! Bounds are cheap sanity rails around the sampling estimators:
//!
//! * **Lower bound** — take a set of pairwise *edge-disjoint* s-t paths
//!   `P_1..P_k` (greedily, most reliable first). Each path exists fully
//!   with probability `prod p(e)`, the events are independent (disjoint
//!   edge sets), and any of them implies reachability:
//!   `R >= 1 - prod_i (1 - Pr[P_i])`.
//! * **Upper bound** — for any s-t edge cut `C`, reachability requires at
//!   least one cut edge to exist: `R <= 1 - prod_{e in C} (1 - p(e))`.
//!   We evaluate every BFS-level cut (edges crossing from nodes at depth
//!   `< d` to depth `>= d`, which always separates s from t) plus the
//!   trivial cuts (s's out-edges, t's in-edges), and keep the minimum.
//!
//! Both are valid for every graph; tightness varies (dense graphs with
//! many short paths push both toward the truth). Property tests verify
//! `lower <= exact <= upper` on random graphs.

use crate::paths::most_reliable_path;
use relcomp_ugraph::{NodeId, UncertainGraph};
use std::collections::HashSet;

/// A `[lower, upper]` enclosure of `R(s, t)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReliabilityBounds {
    /// Guaranteed lower bound.
    pub lower: f64,
    /// Guaranteed upper bound.
    pub upper: f64,
}

impl ReliabilityBounds {
    /// Width of the enclosure.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// True if `r` lies inside the enclosure (with tolerance).
    pub fn contains(&self, r: f64) -> bool {
        r >= self.lower - 1e-9 && r <= self.upper + 1e-9
    }
}

/// Compute both bounds. `max_paths` caps the greedy disjoint-path search
/// (the paper-cited bounds use small families; 8 is plenty in practice).
pub fn reliability_bounds(
    graph: &UncertainGraph,
    s: NodeId,
    t: NodeId,
    max_paths: usize,
) -> ReliabilityBounds {
    assert!(
        graph.contains_node(s) && graph.contains_node(t),
        "query nodes out of range"
    );
    if s == t {
        return ReliabilityBounds {
            lower: 1.0,
            upper: 1.0,
        };
    }
    ReliabilityBounds {
        lower: disjoint_paths_lower_bound(graph, s, t, max_paths),
        upper: level_cut_upper_bound(graph, s, t),
    }
}

/// Greedy edge-disjoint-paths lower bound (see module docs).
pub fn disjoint_paths_lower_bound(
    graph: &UncertainGraph,
    s: NodeId,
    t: NodeId,
    max_paths: usize,
) -> f64 {
    if s == t {
        return 1.0;
    }
    // Work on a shrinking copy: re-run Dijkstra with used edges removed.
    // We emulate removal with a ban set (the graph is immutable).
    let mut banned: HashSet<relcomp_ugraph::EdgeId> = HashSet::new();
    let mut miss_all = 1.0f64;
    let mut found_any = false;
    for _ in 0..max_paths {
        // Most reliable path avoiding banned edges: rebuild a filtered
        // view through a masked Dijkstra (cheapest correct option:
        // materialize a filtered graph).
        let Some(path) = masked_most_reliable_path(graph, s, t, &banned) else {
            break;
        };
        found_any = true;
        miss_all *= 1.0 - path.probability;
        for e in path.edges {
            banned.insert(e);
        }
    }
    if found_any {
        1.0 - miss_all
    } else {
        0.0
    }
}

/// Dijkstra over `-ln p` skipping banned edges.
fn masked_most_reliable_path(
    graph: &UncertainGraph,
    s: NodeId,
    t: NodeId,
    banned: &HashSet<relcomp_ugraph::EdgeId>,
) -> Option<crate::paths::ReliablePath> {
    if banned.is_empty() {
        return most_reliable_path(graph, s, t);
    }
    // Rebuild a filtered graph; bounded work and keeps one Dijkstra
    // implementation. Node ids are preserved.
    let mut b =
        relcomp_ugraph::GraphBuilder::new(graph.num_nodes()).with_edge_capacity(graph.num_edges());
    for (e, u, v, p) in graph.edges() {
        if !banned.contains(&e) {
            b.add_edge_prob(u, v, p).expect("already validated");
        }
    }
    let filtered = b.build();
    let path = most_reliable_path(&filtered, s, t)?;
    // Map the filtered edge ids back to the original graph's ids.
    let mut edges = Vec::with_capacity(path.edges.len());
    for w in path.nodes.windows(2) {
        edges.push(
            graph
                .find_edge(w[0], w[1])
                .expect("edge exists in original"),
        );
    }
    Some(crate::paths::ReliablePath {
        edges,
        nodes: path.nodes,
        probability: path.probability,
    })
}

/// Minimum over all BFS-level cuts and the trivial endpoint cuts (see
/// module docs). Returns 0 when `t` is unreachable (the empty cut).
pub fn level_cut_upper_bound(graph: &UncertainGraph, s: NodeId, t: NodeId) -> f64 {
    if s == t {
        return 1.0;
    }
    let dist = relcomp_ugraph::traversal::hop_distances(graph, s, graph.num_nodes());
    let Some(t_depth) = dist[t.index()] else {
        return 0.0; // unreachable even with every edge present
    };
    debug_assert!(t_depth >= 1);

    // For each depth d in 1..=t_depth, the cut = edges from depth < d
    // (reachable side) to depth >= d or unreachable. Any s-t path crosses
    // it. Accumulate per-level products of (1 - p).
    let mut level_miss = vec![1.0f64; t_depth as usize + 1]; // index by d
    for (_e, u, v, p) in graph.edges() {
        let Some(du) = dist[u.index()] else { continue };
        let dv = dist[v.index()];
        // Edge crosses cut d iff du < d and (dv unreachable-from-s is
        // impossible here since v has an in-edge from a reachable node;
        // treat missing as +inf) dv >= d.
        let dv = dv.unwrap_or(u32::MAX);
        if dv > du {
            let lo = du + 1;
            let hi = dv.min(t_depth);
            for d in lo..=hi {
                level_miss[d as usize] *= 1.0 - p.value();
            }
        }
    }
    let mut best = 1.0f64;
    for &miss in level_miss.iter().take(t_depth as usize + 1).skip(1) {
        best = best.min(1.0 - miss);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_reliability;
    use relcomp_ugraph::GraphBuilder;

    fn diamond(p: f64) -> UncertainGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), p).unwrap();
        b.add_edge(NodeId(1), NodeId(3), p).unwrap();
        b.add_edge(NodeId(0), NodeId(2), p).unwrap();
        b.add_edge(NodeId(2), NodeId(3), p).unwrap();
        b.build()
    }

    #[test]
    fn diamond_bounds_are_exact_enclosure() {
        let g = diamond(0.5);
        let exact = exact_reliability(&g, NodeId(0), NodeId(3)); // 0.4375
        let b = reliability_bounds(&g, NodeId(0), NodeId(3), 8);
        assert!(b.contains(exact), "{b:?} vs exact {exact}");
        // Two disjoint paths of prob 0.25 each: lower = 1 - 0.75^2.
        assert!((b.lower - 0.4375).abs() < 1e-12);
        // Level cut of two edges with p = 0.5: upper = 0.75.
        assert!((b.upper - 0.75).abs() < 1e-12);
    }

    #[test]
    fn chain_bounds_collapse_to_exact() {
        // A chain has one path and single-edge cuts: lower = product,
        // upper = min edge probability.
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.6).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.3).unwrap();
        let g = b.build();
        let bounds = reliability_bounds(&g, NodeId(0), NodeId(2), 4);
        assert!((bounds.lower - 0.18).abs() < 1e-12);
        assert!((bounds.upper - 0.3).abs() < 1e-12);
        let exact = exact_reliability(&g, NodeId(0), NodeId(2));
        assert!(bounds.contains(exact));
    }

    #[test]
    fn unreachable_gives_zero_zero() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(1), NodeId(0), 0.9).unwrap();
        let g = b.build();
        let bounds = reliability_bounds(&g, NodeId(0), NodeId(1), 4);
        assert_eq!(bounds.lower, 0.0);
        assert_eq!(bounds.upper, 0.0);
    }

    #[test]
    fn s_equals_t_is_tight_one() {
        let g = diamond(0.5);
        let b = reliability_bounds(&g, NodeId(1), NodeId(1), 4);
        assert_eq!((b.lower, b.upper), (1.0, 1.0));
    }

    #[test]
    fn more_paths_tighten_lower_bound() {
        let g = diamond(0.5);
        let one = disjoint_paths_lower_bound(&g, NodeId(0), NodeId(3), 1);
        let two = disjoint_paths_lower_bound(&g, NodeId(0), NodeId(3), 2);
        assert!(two > one);
    }

    #[test]
    fn width_shrinks_with_probability_extremes() {
        let strong = diamond(0.99);
        let b = reliability_bounds(&strong, NodeId(0), NodeId(3), 8);
        assert!(b.width() < 0.03, "width {}", b.width());
    }
}
