//! Distance-constrained reachability: `R_d(s, t)` — the probability that
//! `t` is reachable from `s` within at most `d` hops.
//!
//! This is the query Recursive Sampling (RHH) was *originally* proposed
//! for (Jin et al., PVLDB'11); the comparison paper adapts it to the
//! unconstrained s-t query (§2.4: "we adapted the proposed approach to
//! compute the s-t reliability without any distance constraint"). Here we
//! keep the original query too, with three estimators:
//!
//! * [`distance_constrained_with`] — depth-limited lazy-sampling MC as a
//!   streaming [`SampleBudget`] session (fixed, eps+confidence, or
//!   wall-time budgets, Wilson CI half-width in the [`Estimate`]);
//! * [`mc_distance_constrained`] — the historical fixed-`k` entry point,
//!   now a thin wrapper over a fixed budget (bit-identical RNG stream);
//! * [`exact_distance_constrained`] — enumeration oracle for tests.
//!
//! `R_d` is monotone in `d` and converges to plain `R(s, t)` once `d`
//! reaches the number of nodes (any simple path fits).
//!
//! The served and parallel paths
//! (`ParallelSampler::estimate_distance_constrained_with`)
//! sample `R_d` through the packed 64-world kernel
//! ([`crate::packed::packed_reach_within`], always lazily probed — the
//! hop bound caps how much of the graph a batch touches); the session
//! loop and stopping rules are the same.

use crate::estimator::Estimate;
use crate::memory::MemoryTracker;
use crate::sampler::coin;
use crate::session::{EstimationSession, SampleBudget};
use rand::RngCore;
use relcomp_ugraph::possible_world::enumerate_worlds;
use relcomp_ugraph::traversal::{bfs_reaches_within, BoundedBfsWorkspace};
use relcomp_ugraph::{NodeId, UncertainGraph};

/// Estimate `R_d(s, t)` by streaming depth-limited lazy-sampling MC
/// batches until `budget` says stop (Algorithm 1 with a depth cap, given
/// the session treatment). Under [`SampleBudget::fixed`] the coin stream
/// — and therefore the estimate — is bit-identical to the historical
/// [`mc_distance_constrained`] loop.
pub fn distance_constrained_with(
    graph: &UncertainGraph,
    s: NodeId,
    t: NodeId,
    d: usize,
    budget: &SampleBudget,
    rng: &mut dyn RngCore,
) -> Estimate {
    assert!(
        graph.contains_node(s) && graph.contains_node(t),
        "query nodes out of range"
    );
    let mut mem = MemoryTracker::new();
    mem.baseline(BoundedBfsWorkspace::bytes_for(graph.num_nodes()));
    let mut session = EstimationSession::begin(budget);
    if s == t {
        return session.finish_exact(1.0, &mem);
    }
    let mut ws = BoundedBfsWorkspace::new(graph.num_nodes());
    let mut total_hits = 0usize;
    let mut total = 0usize;
    loop {
        let n = session.next_batch();
        if n == 0 {
            break;
        }
        let mut hits = 0usize;
        for _ in 0..n {
            if bfs_reaches_within(graph, s, t, d, &mut ws, |e| {
                coin(rng, graph.prob(e).value())
            }) {
                hits += 1;
            }
        }
        session.record_hits(hits, n);
        total_hits += hits;
        total += n;
    }
    session.finish(total_hits as f64 / total as f64, &mem)
}

/// MC estimate of `R_d(s, t)` with exactly `k` samples — a thin wrapper
/// over [`distance_constrained_with`] with a fixed budget, bit-identical
/// to the historical pre-session loop.
pub fn mc_distance_constrained(
    graph: &UncertainGraph,
    s: NodeId,
    t: NodeId,
    d: usize,
    k: usize,
    rng: &mut dyn RngCore,
) -> f64 {
    assert!(k > 0, "sample count must be positive");
    distance_constrained_with(graph, s, t, d, &SampleBudget::fixed(k), rng).reliability
}

/// Exact `R_d(s, t)` by world enumeration (test oracle, `m <= 26`).
pub fn exact_distance_constrained(graph: &UncertainGraph, s: NodeId, t: NodeId, d: usize) -> f64 {
    assert!(
        graph.contains_node(s) && graph.contains_node(t),
        "query nodes out of range"
    );
    if s == t {
        return 1.0;
    }
    let mut ws = BoundedBfsWorkspace::new(graph.num_nodes());
    let mut total = 0.0;
    for world in enumerate_worlds(graph) {
        if bfs_reaches_within(graph, s, t, d, &mut ws, |e| world.contains(e)) {
            total += world.probability(graph);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_reliability;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use relcomp_ugraph::GraphBuilder;

    /// Direct edge 0 -> 2 (0.2) and two-hop detour 0 -> 1 -> 2 (0.9 each).
    fn detour() -> UncertainGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(2), 0.2).unwrap();
        b.add_edge(NodeId(0), NodeId(1), 0.9).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.9).unwrap();
        b.build()
    }

    #[test]
    fn exact_d1_counts_only_the_direct_edge() {
        let g = detour();
        let r1 = exact_distance_constrained(&g, NodeId(0), NodeId(2), 1);
        assert!((r1 - 0.2).abs() < 1e-12);
    }

    #[test]
    fn exact_d2_equals_unconstrained_here() {
        let g = detour();
        let r2 = exact_distance_constrained(&g, NodeId(0), NodeId(2), 2);
        let r = exact_reliability(&g, NodeId(0), NodeId(2));
        assert!((r2 - r).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_distance() {
        let g = detour();
        let mut prev = 0.0;
        for d in 0..4 {
            let r = exact_distance_constrained(&g, NodeId(0), NodeId(2), d);
            assert!(r >= prev - 1e-12, "d={d}: {r} < {prev}");
            prev = r;
        }
    }

    #[test]
    fn mc_tracks_exact() {
        let g = detour();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for d in [1usize, 2] {
            let exact = exact_distance_constrained(&g, NodeId(0), NodeId(2), d);
            let mc = mc_distance_constrained(&g, NodeId(0), NodeId(2), d, 40_000, &mut rng);
            assert!((mc - exact).abs() < 0.01, "d={d}: mc {mc} vs exact {exact}");
        }
    }

    #[test]
    fn adaptive_session_converges_and_brackets_exact() {
        let g = detour();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let exact = exact_distance_constrained(&g, NodeId(0), NodeId(2), 2);
        let est = distance_constrained_with(
            &g,
            NodeId(0),
            NodeId(2),
            2,
            &SampleBudget::adaptive(0.05, 100_000),
            &mut rng,
        );
        assert_eq!(est.stop_reason, crate::StopReason::Converged);
        assert!(est.samples < 100_000, "stopped early: {}", est.samples);
        let hw = est.half_width.expect("bernoulli CI");
        assert!((est.reliability - exact).abs() <= hw + 0.01);
    }

    #[test]
    fn session_handles_s_equals_t_without_drawing() {
        let g = detour();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let est = distance_constrained_with(
            &g,
            NodeId(1),
            NodeId(1),
            0,
            &SampleBudget::fixed(500),
            &mut rng,
        );
        assert_eq!(est.reliability, 1.0);
        assert_eq!(est.samples, 500, "fixed accounting preserved");
        assert_eq!(est.half_width, Some(0.0));
    }

    #[test]
    fn d_zero_only_reaches_self() {
        let g = detour();
        assert_eq!(exact_distance_constrained(&g, NodeId(0), NodeId(2), 0), 0.0);
        assert_eq!(exact_distance_constrained(&g, NodeId(1), NodeId(1), 0), 1.0);
    }
}
