//! Distance-constrained reachability: `R_d(s, t)` — the probability that
//! `t` is reachable from `s` within at most `d` hops.
//!
//! This is the query Recursive Sampling (RHH) was *originally* proposed
//! for (Jin et al., PVLDB'11); the comparison paper adapts it to the
//! unconstrained s-t query (§2.4: "we adapted the proposed approach to
//! compute the s-t reliability without any distance constraint"). Here we
//! keep the original query too, with two estimators:
//!
//! * [`mc_distance_constrained`] — depth-limited lazy-sampling MC;
//! * [`exact_distance_constrained`] — enumeration oracle for tests.
//!
//! `R_d` is monotone in `d` and converges to plain `R(s, t)` once `d`
//! reaches the number of nodes (any simple path fits).

use crate::sampler::coin;
use rand::RngCore;
use relcomp_ugraph::possible_world::enumerate_worlds;
use relcomp_ugraph::{NodeId, UncertainGraph};

/// Depth-limited BFS in one sampled world: is `t` within `d` hops of `s`,
/// where `edge_exists` decides per-edge presence?
fn bounded_bfs<F>(
    graph: &UncertainGraph,
    s: NodeId,
    t: NodeId,
    d: usize,
    mut edge_exists: F,
) -> bool
where
    F: FnMut(relcomp_ugraph::EdgeId) -> bool,
{
    if s == t {
        return true;
    }
    let n = graph.num_nodes();
    let mut depth: Vec<Option<u32>> = vec![None; n];
    depth[s.index()] = Some(0);
    let mut frontier = vec![s];
    let mut next = Vec::new();
    let mut h = 0usize;
    while !frontier.is_empty() && h < d {
        h += 1;
        for &v in &frontier {
            for (e, w) in graph.out_edges(v) {
                if depth[w.index()].is_none() && edge_exists(e) {
                    if w == t {
                        return true;
                    }
                    depth[w.index()] = Some(h as u32);
                    next.push(w);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    false
}

/// MC estimate of `R_d(s, t)` with `k` samples (lazy edge instantiation,
/// early termination — Algorithm 1 with a depth cap).
pub fn mc_distance_constrained(
    graph: &UncertainGraph,
    s: NodeId,
    t: NodeId,
    d: usize,
    k: usize,
    rng: &mut dyn RngCore,
) -> f64 {
    assert!(
        graph.contains_node(s) && graph.contains_node(t),
        "query nodes out of range"
    );
    assert!(k > 0, "sample count must be positive");
    let mut hits = 0usize;
    for _ in 0..k {
        if bounded_bfs(graph, s, t, d, |e| coin(rng, graph.prob(e).value())) {
            hits += 1;
        }
    }
    hits as f64 / k as f64
}

/// Exact `R_d(s, t)` by world enumeration (test oracle, `m <= 26`).
pub fn exact_distance_constrained(graph: &UncertainGraph, s: NodeId, t: NodeId, d: usize) -> f64 {
    assert!(
        graph.contains_node(s) && graph.contains_node(t),
        "query nodes out of range"
    );
    if s == t {
        return 1.0;
    }
    let mut total = 0.0;
    for world in enumerate_worlds(graph) {
        if bounded_bfs(graph, s, t, d, |e| world.contains(e)) {
            total += world.probability(graph);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_reliability;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use relcomp_ugraph::GraphBuilder;

    /// Direct edge 0 -> 2 (0.2) and two-hop detour 0 -> 1 -> 2 (0.9 each).
    fn detour() -> UncertainGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(2), 0.2).unwrap();
        b.add_edge(NodeId(0), NodeId(1), 0.9).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.9).unwrap();
        b.build()
    }

    #[test]
    fn exact_d1_counts_only_the_direct_edge() {
        let g = detour();
        let r1 = exact_distance_constrained(&g, NodeId(0), NodeId(2), 1);
        assert!((r1 - 0.2).abs() < 1e-12);
    }

    #[test]
    fn exact_d2_equals_unconstrained_here() {
        let g = detour();
        let r2 = exact_distance_constrained(&g, NodeId(0), NodeId(2), 2);
        let r = exact_reliability(&g, NodeId(0), NodeId(2));
        assert!((r2 - r).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_distance() {
        let g = detour();
        let mut prev = 0.0;
        for d in 0..4 {
            let r = exact_distance_constrained(&g, NodeId(0), NodeId(2), d);
            assert!(r >= prev - 1e-12, "d={d}: {r} < {prev}");
            prev = r;
        }
    }

    #[test]
    fn mc_tracks_exact() {
        let g = detour();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for d in [1usize, 2] {
            let exact = exact_distance_constrained(&g, NodeId(0), NodeId(2), d);
            let mc = mc_distance_constrained(&g, NodeId(0), NodeId(2), d, 40_000, &mut rng);
            assert!((mc - exact).abs() < 0.01, "d={d}: mc {mc} vs exact {exact}");
        }
    }

    #[test]
    fn d_zero_only_reaches_self() {
        let g = detour();
        assert_eq!(exact_distance_constrained(&g, NodeId(0), NodeId(2), 0), 0.0);
        assert_eq!(exact_distance_constrained(&g, NodeId(1), NodeId(1), 0), 1.0);
    }
}
