//! Deterministic parallel sampling engine.
//!
//! The paper's estimators are single-threaded: one RNG stream drives `K`
//! sequential samples. A serving system wants the same sample budget
//! spread across cores *without* giving up reproducibility. The trick is
//! to decouple the unit of randomness from the unit of scheduling:
//!
//! * The budget is split into fixed-size **shards** (the last shard takes
//!   the remainder). Shard `i` always draws from its own `ChaCha8Rng`
//!   stream, derived from `(seed, i)` by a SplitMix64-style mix —
//!   regardless of which thread runs it.
//! * Worker threads (a `std::thread::scope` pool) claim shards through an
//!   atomic cursor. Per-shard hit counts are integers, and integer
//!   addition is commutative, so the total — and therefore the estimate —
//!   is bit-identical for 1, 2, or 64 threads.
//!
//! Five entry-point families cover the serving workloads: plain MC
//! ([`ParallelSampler::estimate_mc`]), BFS-Sharing with a sharded world
//! index ([`ParallelSampler::estimate_bfs_sharing`]), multi-target MC
//! ([`ParallelSampler::estimate_mc_multi`]) which amortizes possible-world
//! sampling across queries that share a source node, top-k reliable
//! targets ([`ParallelSampler::top_k_targets_with`]), and
//! distance-constrained reachability
//! ([`ParallelSampler::estimate_distance_constrained_with`]). The
//! adaptive variants check convergence at the same deterministic
//! shard-group barriers, so budget-driven answers are thread-count
//! invariant too.
//!
//! The MC-family entry points draw their worlds through the bit-packed
//! kernel of [`crate::packed`]: each [`SHARD_SAMPLES`]-sample shard runs
//! as `SHARD_SAMPLES / 64` packed 64-world batches (the tail shard adds a
//! scalar remainder loop on the same stream). Shard `i` still owns stream
//! `(seed, i)` exclusively, so thread-count invariance and `(seed,
//! budget)` determinism are untouched — only the per-stream draw order
//! changed relative to the scalar loops.

use crate::bfs_sharing::BfsSharingIndex;
use crate::estimator::{validate_query, Estimate};
use crate::memory::MemoryTracker;
use crate::packed::{
    note_scalar_samples, packed_reach_within, packed_reach_worlds, packed_sample_worlds,
    split_batch, PackedWorkspace,
};
use crate::sampler::coin;
use crate::session::{finish_estimate, Convergence, SampleBudget, StopReason, DEFAULT_CONFIDENCE};
use crate::topk::{boundary_tracker, rank_hits, reachable_targets, TopKResult};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use relcomp_ugraph::traversal::{
    bfs_reaches, bfs_reaches_within, BfsWorkspace, BoundedBfsWorkspace,
};
use relcomp_ugraph::{NodeId, UncertainGraph};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Samples per shard. Small enough that a typical budget (thousands)
/// splits into more shards than threads (good load balance), large enough
/// that shard bookkeeping is noise next to the BFS work.
pub const SHARD_SAMPLES: usize = 256;

/// Minimum shards per adaptive *round* (the batch barrier at which
/// cross-shard convergence is checked). Coarser than the estimator-level
/// default batch so the worker pool stays busy between barriers; the
/// barrier positions depend only on the budget — never on the thread
/// count — so adaptive stopping decisions are deterministic for a given
/// seed on any machine shape.
pub const MIN_ROUND_SHARDS: usize = 8;

/// SplitMix64 finalizer: decorrelates per-shard streams so that shard
/// seeds derived from adjacent indices are statistically independent.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG stream for shard `shard` of a run with master seed `seed`.
///
/// Public so tests (and the sequential reference path) can reproduce any
/// shard in isolation.
pub fn shard_rng(seed: u64, shard: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(mix64(seed ^ mix64(shard)))
}

/// A parallel sampling engine over one fixed uncertain graph.
///
/// Construction is cheap (no index); the engine is `Sync` and can be
/// shared across serving threads — each call builds its own scoped worker
/// pool. Per-call `std::thread::scope` keeps the engine stateless and
/// borrow-friendly at the cost of a thread spawn per worker per query
/// (tens of microseconds, noise next to thousand-sample BFS budgets); a
/// persistent pool is the upgrade path if profiles ever show otherwise.
pub struct ParallelSampler {
    graph: Arc<UncertainGraph>,
    threads: usize,
}

impl ParallelSampler {
    /// Create an engine running `threads` workers per call (clamped to at
    /// least 1).
    pub fn new(graph: Arc<UncertainGraph>, threads: usize) -> Self {
        ParallelSampler {
            graph,
            threads: threads.max(1),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Arc<UncertainGraph> {
        &self.graph
    }

    /// Shard boundaries for a budget of `k` samples: `(start, len)` per
    /// shard, every shard but the last exactly [`SHARD_SAMPLES`] long.
    fn shards(k: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(k.div_ceil(SHARD_SAMPLES));
        let mut start = 0;
        while start < k {
            let len = SHARD_SAMPLES.min(k - start);
            out.push((start, len));
            start += len;
        }
        out
    }

    /// Run `work(state, shard_index, shard_len, rng) -> hits` over all
    /// shards on the worker pool; each worker carries one `init()` state
    /// (reusable workspaces stay out of the per-shard hot path). Returns
    /// total hits, deterministic in `seed` and `k` regardless of thread
    /// count.
    fn run_shards<S, I, W>(&self, k: usize, seed: u64, init: I, work: W) -> usize
    where
        I: Fn() -> S + Sync,
        W: Fn(&mut S, usize, usize, &mut ChaCha8Rng) -> usize + Sync,
    {
        let shards = Self::shards(k);
        self.run_shard_range(&shards, 0, shards.len(), seed, init, work)
    }

    /// The one shard-scheduling loop every sharded workload runs on: run
    /// `work(state, shard_index, shard_len, rng)` over the global shards
    /// `[lo, hi)` on the worker pool, then hand each worker's final
    /// `state` to `merge` (called once per exiting worker; the caller
    /// supplies its own synchronization). Shard `i` always draws from
    /// stream `(seed, i)`, so any commutative merge is deterministic
    /// regardless of thread count.
    fn run_shard_range_fold<S, I, W, M>(
        &self,
        shards: &[(usize, usize)],
        range: std::ops::Range<usize>,
        seed: u64,
        init: I,
        work: W,
        merge: M,
    ) where
        I: Fn() -> S + Sync,
        W: Fn(&mut S, usize, usize, &mut ChaCha8Rng) + Sync,
        M: Fn(S) + Sync,
    {
        let (lo, hi) = (range.start, range.end);
        let cursor = AtomicUsize::new(lo);
        let workers = self.threads.min(hi.saturating_sub(lo)).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut state = init();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= hi {
                            break;
                        }
                        let Some(&(_, len)) = shards.get(i) else {
                            break;
                        };
                        let mut rng = shard_rng(seed, i as u64);
                        work(&mut state, i, len, &mut rng);
                    }
                    merge(state);
                });
            }
        });
    }

    /// Run `work` over the global shards `[lo, hi)` of `shards` on the
    /// worker pool, summing per-shard hit counts. Deterministic
    /// regardless of thread count — the primitive both the fixed full
    /// sweep and the adaptive round loop are built on.
    fn run_shard_range<S, I, W>(
        &self,
        shards: &[(usize, usize)],
        lo: usize,
        hi: usize,
        seed: u64,
        init: I,
        work: W,
    ) -> usize
    where
        I: Fn() -> S + Sync,
        W: Fn(&mut S, usize, usize, &mut ChaCha8Rng) -> usize + Sync,
    {
        let total = AtomicUsize::new(0);
        self.run_shard_range_fold(
            shards,
            lo..hi,
            seed,
            || (init(), 0usize),
            |st: &mut (S, usize), i, len, rng| st.1 += work(&mut st.0, i, len, rng),
            |st| {
                total.fetch_add(st.1, Ordering::Relaxed);
            },
        );
        total.into_inner()
    }

    /// Drive an adaptive budget over pre-laid-out shards: rounds of
    /// [`MIN_ROUND_SHARDS`]-or-larger shard groups run on the pool, with
    /// cross-shard convergence checked at each round barrier. Barrier
    /// positions and the merged statistics depend only on `(budget,
    /// seed)`, so the stopping decision — and therefore the estimate —
    /// is identical for any thread count.
    fn run_adaptive<S, I, W>(
        &self,
        budget: &SampleBudget,
        seed: u64,
        init: I,
        work: W,
    ) -> (usize, usize, Convergence, StopReason, Instant)
    where
        I: Fn() -> S + Sync,
        W: Fn(&mut S, usize, usize, &mut ChaCha8Rng) -> usize + Sync,
    {
        debug_assert!(!budget.is_fixed());
        let start = Instant::now();
        let shards = Self::shards(budget.max_samples());
        let per_round = budget.batch().div_ceil(SHARD_SAMPLES).max(MIN_ROUND_SHARDS);
        let mut tracker = Convergence::new(budget.confidence());
        let mut hits = 0usize;
        let mut samples = 0usize;
        let mut next = 0usize;
        let stop = loop {
            // The shards cover max_samples exactly, so the shared rule's
            // cap check fires precisely when the groups are exhausted.
            if let Some(stop) = crate::session::should_stop(budget, &tracker, samples, start) {
                break stop;
            }
            let hi = (next + per_round).min(shards.len());
            let round_samples: usize = shards[next..hi].iter().map(|&(_, len)| len).sum();
            let round_hits = self.run_shard_range(&shards, next, hi, seed, &init, &work);
            tracker.observe_hits(round_hits, round_samples);
            hits += round_hits;
            samples += round_samples;
            next = hi;
        };
        (hits, samples, tracker, stop, start)
    }

    /// Per-worker reusable state for the packed MC shard kernel: the
    /// packed 64-world workspace plus a scalar workspace for tails.
    fn packed_mc_state(&self) -> (PackedWorkspace, BfsWorkspace) {
        (
            PackedWorkspace::for_graph(&self.graph),
            BfsWorkspace::new(self.graph.num_nodes()),
        )
    }

    /// Workspace bytes one worker's packed MC state holds (for memory
    /// accounting without allocating).
    fn packed_mc_state_bytes(&self) -> usize {
        PackedWorkspace::bytes_for(self.graph.num_nodes(), self.graph.num_edges())
            + BfsWorkspace::bytes_for(self.graph.num_nodes())
    }

    /// Monte-Carlo estimate of `R(s, t)` with `k` samples under master
    /// seed `seed`, drawn through the packed 64-world kernel (shards
    /// split into packed batches plus a scalar tail on the same stream).
    /// Bit-identical across thread counts.
    pub fn estimate_mc(&self, s: NodeId, t: NodeId, k: usize, seed: u64) -> Estimate {
        validate_query(&self.graph, s, t);
        assert!(k > 0, "sample count must be positive");
        let start = Instant::now();
        let graph = &self.graph;
        let hits = self.run_shards(
            k,
            seed,
            || self.packed_mc_state(),
            |st, _, len, rng| packed_shard_st(graph, s, t, len, st, rng),
        );
        let mut tracker = Convergence::new(DEFAULT_CONFIDENCE);
        tracker.observe_hits(hits, k);
        let mut mem = MemoryTracker::new();
        mem.baseline(self.threads * self.packed_mc_state_bytes());
        finish_estimate(
            hits as f64 / k as f64,
            k,
            start,
            &mem,
            Some(&tracker),
            StopReason::FixedK,
        )
    }

    /// Monte-Carlo estimate under an adaptive [`SampleBudget`]: the cap
    /// is sharded up front, shard groups stream through the pool, and
    /// convergence is checked at deterministic batch barriers. A fixed
    /// budget delegates to [`ParallelSampler::estimate_mc`] bit for bit.
    pub fn estimate_mc_with(
        &self,
        s: NodeId,
        t: NodeId,
        budget: &SampleBudget,
        seed: u64,
    ) -> Estimate {
        if budget.is_fixed() {
            return reconfide(self.estimate_mc(s, t, budget.max_samples(), seed), budget);
        }
        validate_query(&self.graph, s, t);
        let graph = &self.graph;
        let (hits, samples, tracker, stop, start) = self.run_adaptive(
            budget,
            seed,
            || self.packed_mc_state(),
            |st, _, len, rng| packed_shard_st(graph, s, t, len, st, rng),
        );
        let mut mem = MemoryTracker::new();
        mem.baseline(self.threads * self.packed_mc_state_bytes());
        finish_estimate(
            hits as f64 / samples as f64,
            samples,
            start,
            &mem,
            Some(&tracker),
            stop,
        )
    }

    /// BFS-Sharing estimate of `R(s, t)`: the world budget `k` is sharded,
    /// each shard samples its own compact bit-vector index from its own
    /// stream and counts reached worlds with the shared-BFS fixpoint.
    /// Statistically identical to one `k`-world index; bit-identical
    /// across thread counts.
    pub fn estimate_bfs_sharing(&self, s: NodeId, t: NodeId, k: usize, seed: u64) -> Estimate {
        validate_query(&self.graph, s, t);
        assert!(k > 0, "sample count must be positive");
        let start = Instant::now();
        let graph = &self.graph;
        let index_bytes = AtomicUsize::new(0);
        let hits = self.run_shards(
            k,
            seed,
            || (),
            |_, _, len, rng| {
                let index = BfsSharingIndex::build(graph, len, rng);
                index_bytes.fetch_max(index.size_bytes(), Ordering::Relaxed);
                count_reached_worlds(graph, &index, s, t, len)
            },
        );
        let mut tracker = Convergence::new(DEFAULT_CONFIDENCE);
        tracker.observe_hits(hits, k);
        let mut mem = MemoryTracker::new();
        mem.baseline(self.threads * (index_bytes.into_inner() + graph.num_nodes() * (8 + 4 + 1)));
        finish_estimate(
            hits as f64 / k as f64,
            k,
            start,
            &mem,
            Some(&tracker),
            StopReason::FixedK,
        )
    }

    /// BFS-Sharing estimate under an adaptive [`SampleBudget`]: shard
    /// groups each sample their own compact world index and count reached
    /// worlds; convergence is checked at deterministic batch barriers.
    /// A fixed budget delegates to
    /// [`ParallelSampler::estimate_bfs_sharing`] bit for bit.
    pub fn estimate_bfs_sharing_with(
        &self,
        s: NodeId,
        t: NodeId,
        budget: &SampleBudget,
        seed: u64,
    ) -> Estimate {
        if budget.is_fixed() {
            return reconfide(
                self.estimate_bfs_sharing(s, t, budget.max_samples(), seed),
                budget,
            );
        }
        validate_query(&self.graph, s, t);
        let graph = &self.graph;
        let index_bytes = AtomicUsize::new(0);
        let (hits, samples, tracker, stop, start) = self.run_adaptive(
            budget,
            seed,
            || (),
            |_, _, len, rng| {
                let index = BfsSharingIndex::build(graph, len, rng);
                index_bytes.fetch_max(index.size_bytes(), Ordering::Relaxed);
                count_reached_worlds(graph, &index, s, t, len)
            },
        );
        let mut mem = MemoryTracker::new();
        mem.baseline(self.threads * (index_bytes.into_inner() + graph.num_nodes() * (8 + 4 + 1)));
        finish_estimate(
            hits as f64 / samples as f64,
            samples,
            start,
            &mem,
            Some(&tracker),
            stop,
        )
    }

    /// Multi-target MC: estimate `R(s, t)` for every `t` in `targets`
    /// from **one** shared stream of possible worlds — each sampled world
    /// is explored once from `s` and scored against all targets. This is
    /// the batching primitive the query engine uses for queries sharing a
    /// source: `|targets|` queries for the sampling cost of one.
    ///
    /// Returns one [`Estimate`] per target, in input order. For a given
    /// `(k, seed)` the estimate for target `t` is deterministic across
    /// thread counts, but differs from [`ParallelSampler::estimate_mc`]'s
    /// (early-terminating) stream for the same seed — both are unbiased.
    pub fn estimate_mc_multi(
        &self,
        s: NodeId,
        targets: &[NodeId],
        k: usize,
        seed: u64,
    ) -> Vec<Estimate> {
        for &t in targets {
            validate_query(&self.graph, s, t);
        }
        assert!(k > 0, "sample count must be positive");
        if targets.is_empty() {
            return Vec::new();
        }
        let start = Instant::now();
        let graph = &self.graph;

        // target_slot[v] = Some(indices of `targets` equal to v). Duplicate
        // targets are legal (distinct cache keys can collapse to one node).
        let mut target_slots: Vec<Vec<usize>> = vec![Vec::new(); graph.num_nodes()];
        let mut distinct = 0usize;
        for (i, &t) in targets.iter().enumerate() {
            if target_slots[t.index()].is_empty() {
                distinct += 1;
            }
            target_slots[t.index()].push(i);
        }

        let shards = Self::shards(k);
        let cursor = AtomicUsize::new(0);
        let hit_counts: Vec<AtomicUsize> = targets.iter().map(|_| AtomicUsize::new(0)).collect();
        if distinct == 1 {
            // One distinct target node: run the exact packed s-t kernel a
            // plain `estimate_mc` with the same `(k, seed)` runs, so a
            // batch that collapses to one query answers bit-identically
            // to the single-query path.
            let t = targets[0];
            let hits = self.run_shards(
                k,
                seed,
                || self.packed_mc_state(),
                |st, _, len, rng| packed_shard_st(graph, s, t, len, st, rng),
            );
            for slot in &hit_counts {
                slot.store(hits, Ordering::Relaxed);
            }
        } else {
            let workers = self.threads.min(shards.len()).max(1);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        let mut packed_ws = PackedWorkspace::for_graph(graph);
                        let mut ws = BfsWorkspace::new(graph.num_nodes());
                        let mut local = vec![0usize; targets.len()];
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(&(_, len)) = shards.get(i) else {
                                break;
                            };
                            let mut rng = shard_rng(seed, i as u64);
                            let (words, tail) = split_batch(len);
                            for _ in 0..words {
                                // Full 64-world fixpoint, then score every
                                // target slot by its node's popcount (the
                                // source's reach word is all-ones, so s as
                                // its own target still hits every world).
                                // Only nodes in the reached union can
                                // score, so iterate that — not 0..n.
                                let words_ws =
                                    packed_sample_worlds(graph, s, &mut packed_ws, &mut rng);
                                let reach = words_ws.reach();
                                for &v in words_ws.reached_nodes() {
                                    let slots = &target_slots[v.index()];
                                    if slots.is_empty() {
                                        continue;
                                    }
                                    let c = reach[v.index()].count_ones() as usize;
                                    for &slot in slots {
                                        local[slot] += c;
                                    }
                                }
                            }
                            for _ in 0..tail {
                                sample_world_multi(
                                    graph,
                                    s,
                                    &target_slots,
                                    distinct,
                                    &mut ws,
                                    &mut rng,
                                    &mut local,
                                );
                            }
                            note_scalar_samples(tail as u64);
                        }
                        for (slot, &h) in hit_counts.iter().zip(&local) {
                            slot.fetch_add(h, Ordering::Relaxed);
                        }
                    });
                }
            });
        }

        let elapsed = start.elapsed();
        let aux = self.threads * self.packed_mc_state_bytes() + targets.len() * 8;
        hit_counts
            .into_iter()
            .map(|h| {
                let hits = h.into_inner();
                let mut tracker = Convergence::new(DEFAULT_CONFIDENCE);
                tracker.observe_hits(hits, k);
                Estimate {
                    reliability: hits as f64 / k as f64,
                    samples: k,
                    elapsed,
                    aux_bytes: aux,
                    variance: Some(tracker.estimator_variance()),
                    half_width: Some(tracker.half_width()),
                    stop_reason: StopReason::FixedK,
                }
            })
            .collect()
    }

    /// Run full-world sampling over the global shards `[lo, hi)`,
    /// accumulating per-node hit counts into `hits`. Per-node addition
    /// is commutative, so the merged counts are deterministic for any
    /// thread count.
    fn run_world_hits_range(
        &self,
        shards: &[(usize, usize)],
        lo: usize,
        hi: usize,
        seed: u64,
        s: NodeId,
        hits: &mut [u64],
    ) {
        let graph = &self.graph;
        let n = graph.num_nodes();
        let merged = Mutex::new(hits);
        self.run_shard_range_fold(
            shards,
            lo..hi,
            seed,
            || {
                (
                    PackedWorkspace::for_graph(graph),
                    BfsWorkspace::new(n),
                    vec![0u64; n],
                )
            },
            |st: &mut (PackedWorkspace, BfsWorkspace, Vec<u64>), _, len, rng| {
                let (words, tail) = split_batch(len);
                for _ in 0..words {
                    let words_ws = packed_sample_worlds(graph, s, &mut st.0, rng);
                    let reach = words_ws.reach();
                    // The source's word is all-ones by construction; skip
                    // it to match the scalar loop, which never credits s.
                    // Only the reached union can have nonzero words.
                    for &v in words_ws.reached_nodes() {
                        if v != s {
                            st.2[v.index()] += u64::from(reach[v.index()].count_ones());
                        }
                    }
                }
                for _ in 0..tail {
                    sample_world_all(graph, s, &mut st.1, rng, &mut st.2);
                }
                note_scalar_samples(tail as u64);
            },
            |st| {
                let mut shared = merged.lock().expect("hit merge poisoned");
                for (slot, &h) in shared.iter_mut().zip(&st.2) {
                    *slot += h;
                }
            },
        );
    }

    /// Top-k reliable targets from `s` under a streaming [`SampleBudget`]:
    /// the sample cap is sharded up front, shard groups stream through
    /// the worker pool, and the boundary (k-th ranked) score's
    /// convergence is checked at deterministic round barriers — the
    /// ranking, consumed samples, and stop reason are bit-identical for
    /// any thread count. Semantics (ranking order, boundary choice,
    /// stopping rule) are shared with the single-threaded
    /// [`top_k_targets_with`](crate::topk::top_k_targets_with); only the
    /// RNG layout differs (per-shard streams instead of one stream).
    pub fn top_k_targets_with(
        &self,
        s: NodeId,
        k: usize,
        budget: &SampleBudget,
        seed: u64,
    ) -> TopKResult {
        assert!(self.graph.contains_node(s), "source out of range");
        assert!(k > 0, "k must be positive");
        let start = Instant::now();
        let boundary = k.min(reachable_targets(&self.graph, s));
        if boundary == 0 {
            let (samples, stop_reason) = crate::session::exact_answer_accounting(budget);
            return TopKResult {
                scores: Vec::new(),
                samples,
                stop_reason,
                half_width: Some(0.0),
                elapsed: start.elapsed(),
            };
        }
        let shards = Self::shards(budget.max_samples());
        let per_round = if budget.is_fixed() {
            // No stopping rule to consult: one sweep over every shard.
            shards.len()
        } else {
            budget.batch().div_ceil(SHARD_SAMPLES).max(MIN_ROUND_SHARDS)
        };
        let mut hits = vec![0u64; self.graph.num_nodes()];
        let mut scratch = Vec::new();
        let mut samples = 0usize;
        let mut next = 0usize;
        let stop = loop {
            // Fixed budgets have no stopping rule to consult: skip the
            // O(n) boundary-tracker build the cap check can never use.
            let stop = if budget.is_fixed() {
                (samples >= budget.max_samples()).then_some(StopReason::FixedK)
            } else {
                let tracker = boundary_tracker(
                    &hits,
                    s,
                    boundary,
                    samples,
                    budget.confidence(),
                    &mut scratch,
                );
                crate::session::should_stop(budget, &tracker, samples, start)
            };
            if let Some(stop) = stop {
                break stop;
            }
            let hi = (next + per_round).min(shards.len());
            let round_samples: usize = shards[next..hi].iter().map(|&(_, len)| len).sum();
            self.run_world_hits_range(&shards, next, hi, seed, s, &mut hits);
            samples += round_samples;
            next = hi;
        };
        let tracker = boundary_tracker(
            &hits,
            s,
            boundary,
            samples,
            budget.confidence(),
            &mut scratch,
        );
        let hw = tracker.half_width();
        TopKResult {
            scores: rank_hits(&hits, s, k, samples),
            samples,
            stop_reason: stop,
            half_width: hw.is_finite().then_some(hw),
            elapsed: start.elapsed(),
        }
    }

    /// Top-k reliable targets with a fixed budget of `samples` worlds —
    /// [`ParallelSampler::top_k_targets_with`] under
    /// [`SampleBudget::fixed`].
    pub fn top_k_targets(&self, s: NodeId, k: usize, samples: usize, seed: u64) -> TopKResult {
        assert!(samples > 0, "sample count must be positive");
        self.top_k_targets_with(s, k, &SampleBudget::fixed(samples), seed)
    }

    /// Distance-constrained reliability `R_d(s, t)` under a streaming
    /// [`SampleBudget`]: depth-limited lazy-sampling MC over sharded RNG
    /// streams, convergence checked at deterministic shard-group
    /// barriers. Bit-identical across thread counts.
    pub fn estimate_distance_constrained_with(
        &self,
        s: NodeId,
        t: NodeId,
        d: usize,
        budget: &SampleBudget,
        seed: u64,
    ) -> Estimate {
        validate_query(&self.graph, s, t);
        let start = Instant::now();
        let graph = &self.graph;
        let mut mem = MemoryTracker::new();
        mem.baseline(
            self.threads
                * (PackedWorkspace::bytes_for(graph.num_nodes(), graph.num_edges())
                    + BoundedBfsWorkspace::bytes_for(graph.num_nodes())),
        );
        if s == t {
            // Deterministic answer: nothing to sample.
            let (samples, stop_reason) = crate::session::exact_answer_accounting(budget);
            return Estimate {
                reliability: 1.0,
                samples,
                elapsed: start.elapsed(),
                aux_bytes: mem.peak(),
                variance: Some(0.0),
                half_width: Some(0.0),
                stop_reason,
            };
        }
        let work = |st: &mut (PackedWorkspace, BoundedBfsWorkspace),
                    _: usize,
                    len: usize,
                    rng: &mut ChaCha8Rng| {
            let (words, tail) = split_batch(len);
            let mut h = 0usize;
            for _ in 0..words {
                h += packed_reach_within(graph, s, t, d, &mut st.0, rng) as usize;
            }
            for _ in 0..tail {
                if bfs_reaches_within(graph, s, t, d, &mut st.1, |e| {
                    coin(rng, graph.prob(e).value())
                }) {
                    h += 1;
                }
            }
            note_scalar_samples(tail as u64);
            h
        };
        let init = || {
            (
                PackedWorkspace::for_graph(graph),
                BoundedBfsWorkspace::new(graph.num_nodes()),
            )
        };
        if budget.is_fixed() {
            let k = budget.max_samples();
            let hits = self.run_shards(k, seed, init, work);
            let mut tracker = Convergence::new(budget.confidence());
            tracker.observe_hits(hits, k);
            finish_estimate(
                hits as f64 / k as f64,
                k,
                start,
                &mem,
                Some(&tracker),
                StopReason::FixedK,
            )
        } else {
            let (hits, samples, tracker, stop, start) = self.run_adaptive(budget, seed, init, work);
            finish_estimate(
                hits as f64 / samples as f64,
                samples,
                start,
                &mem,
                Some(&tracker),
                stop,
            )
        }
    }

    /// Distance-constrained reliability with a fixed budget of `k`
    /// samples — [`ParallelSampler::estimate_distance_constrained_with`]
    /// under [`SampleBudget::fixed`].
    pub fn estimate_distance_constrained(
        &self,
        s: NodeId,
        t: NodeId,
        d: usize,
        k: usize,
        seed: u64,
    ) -> Estimate {
        assert!(k > 0, "sample count must be positive");
        self.estimate_distance_constrained_with(s, t, d, &SampleBudget::fixed(k), seed)
    }
}

/// Restate a fixed-budget estimate's CI at the budget's confidence
/// level (a pure re-report; see
/// [`restate_bernoulli_confidence`](crate::session::restate_bernoulli_confidence)).
fn reconfide(est: Estimate, budget: &SampleBudget) -> Estimate {
    if budget.confidence() == DEFAULT_CONFIDENCE {
        return est;
    }
    crate::session::restate_bernoulli_confidence(est, budget.confidence())
}

/// Run `len` s-t MC samples of one shard's stream: `len / 64` packed
/// 64-world batches followed by a scalar lazy-BFS tail on the same
/// stream. The per-shard unit every packed MC entry point shares —
/// `estimate_mc`, adaptive MC, and the collapsed (single-distinct-target)
/// multi-target path all answer from this exact draw sequence.
fn packed_shard_st(
    graph: &UncertainGraph,
    s: NodeId,
    t: NodeId,
    len: usize,
    st: &mut (PackedWorkspace, BfsWorkspace),
    rng: &mut ChaCha8Rng,
) -> usize {
    let (words, tail) = split_batch(len);
    let mut h = 0usize;
    for _ in 0..words {
        h += packed_reach_worlds(graph, s, t, &mut st.0, rng) as usize;
    }
    for _ in 0..tail {
        if bfs_reaches(graph, s, t, &mut st.1, |e| coin(rng, graph.prob(e).value())) {
            h += 1;
        }
    }
    note_scalar_samples(tail as u64);
    h
}

/// Sample one possible world lazily and BFS it from `s`, crediting every
/// newly visited node in `hits` — the top-k accumulation step, where
/// every node is a target.
fn sample_world_all(
    graph: &UncertainGraph,
    s: NodeId,
    ws: &mut BfsWorkspace,
    rng: &mut ChaCha8Rng,
    hits: &mut [u64],
) {
    ws.reset();
    ws.visited.insert(s);
    ws.queue.push_back(s);
    while let Some(v) = ws.queue.pop_front() {
        for (e, w) in graph.out_edges(v) {
            if !ws.visited.contains(w) && coin(rng, graph.prob(e).value()) {
                ws.visited.insert(w);
                hits[w.index()] += 1;
                ws.queue.push_back(w);
            }
        }
    }
}

/// Sample one possible world lazily and BFS it from `s`, crediting every
/// target reached. Stops early once all `distinct` target nodes are seen.
fn sample_world_multi(
    graph: &UncertainGraph,
    s: NodeId,
    target_slots: &[Vec<usize>],
    distinct: usize,
    ws: &mut BfsWorkspace,
    rng: &mut ChaCha8Rng,
    hits: &mut [usize],
) {
    ws.reset();
    ws.visited.insert(s);
    ws.queue.push_back(s);
    let mut found = 0usize;
    let credit = |v: NodeId, hits: &mut [usize], found: &mut usize| {
        let slots = &target_slots[v.index()];
        if !slots.is_empty() {
            for &i in slots {
                hits[i] += 1;
            }
            *found += 1;
        }
    };
    credit(s, hits, &mut found);
    if found == distinct {
        return;
    }
    while let Some(v) = ws.queue.pop_front() {
        for (e, w) in graph.out_edges(v) {
            if ws.visited.contains(w) {
                continue;
            }
            if coin(rng, graph.prob(e).value()) {
                ws.visited.insert(w);
                ws.queue.push_back(w);
                credit(w, hits, &mut found);
                if found == distinct {
                    return;
                }
            }
        }
    }
}

/// Count the worlds of `index` (holding `l` worlds) in which `t` is
/// reachable from `s`, via the bit-parallel worklist fixpoint of §2.3.
fn count_reached_worlds(
    graph: &UncertainGraph,
    index: &BfsSharingIndex,
    s: NodeId,
    t: NodeId,
    l: usize,
) -> usize {
    if s == t {
        return l;
    }
    let words = l.div_ceil(64);
    let wpe = words; // the index was built for exactly `l` worlds
    debug_assert_eq!(index.num_worlds(), l);
    let n = graph.num_nodes();
    let mut node_bits = vec![0u64; n * wpe];
    let mut live = vec![false; n];
    let last_mask: u64 = if l % 64 == 0 {
        !0
    } else {
        (1u64 << (l % 64)) - 1
    };
    {
        let base = s.index() * wpe;
        for w in 0..words {
            node_bits[base + w] = if w + 1 == words { last_mask } else { !0 };
        }
        live[s.index()] = true;
    }
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(s);
    let mut in_queue = vec![false; n];
    in_queue[s.index()] = true;
    while let Some(v) = queue.pop_front() {
        in_queue[v.index()] = false;
        let v_base = v.index() * wpe;
        for (e, w) in graph.out_edges(v) {
            let w_base = w.index() * wpe;
            let edge_words = index.edge_words(e);
            let mut changed = false;
            for (i, &edge_word) in edge_words.iter().enumerate().take(words) {
                let add = node_bits[v_base + i] & edge_word;
                let cur = node_bits[w_base + i];
                if cur | add != cur {
                    node_bits[w_base + i] = cur | add;
                    changed = true;
                }
            }
            if changed {
                live[w.index()] = true;
                if !in_queue[w.index()] {
                    in_queue[w.index()] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    if !live[t.index()] {
        return 0;
    }
    let t_base = t.index() * wpe;
    node_bits[t_base..t_base + words]
        .iter()
        .map(|w| w.count_ones() as usize)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_reliability;
    use relcomp_ugraph::GraphBuilder;

    fn diamond() -> Arc<UncertainGraph> {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.6).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.7).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.4).unwrap();
        Arc::new(b.build())
    }

    #[test]
    fn thread_count_does_not_change_mc_estimate() {
        let g = diamond();
        // Budget deliberately not a multiple of SHARD_SAMPLES.
        let k = 3 * SHARD_SAMPLES + 17;
        let baseline =
            ParallelSampler::new(Arc::clone(&g), 1).estimate_mc(NodeId(0), NodeId(3), k, 42);
        for threads in [2, 8] {
            let est = ParallelSampler::new(Arc::clone(&g), threads).estimate_mc(
                NodeId(0),
                NodeId(3),
                k,
                42,
            );
            assert_eq!(
                est.reliability.to_bits(),
                baseline.reliability.to_bits(),
                "{threads} threads diverged from 1 thread"
            );
            assert_eq!(est.samples, k);
        }
    }

    #[test]
    fn thread_count_does_not_change_bfs_sharing_estimate() {
        let g = diamond();
        let k = 2 * SHARD_SAMPLES + 100;
        let baseline = ParallelSampler::new(Arc::clone(&g), 1).estimate_bfs_sharing(
            NodeId(0),
            NodeId(3),
            k,
            7,
        );
        for threads in [2, 8] {
            let est = ParallelSampler::new(Arc::clone(&g), threads).estimate_bfs_sharing(
                NodeId(0),
                NodeId(3),
                k,
                7,
            );
            assert_eq!(est.reliability.to_bits(), baseline.reliability.to_bits());
        }
    }

    #[test]
    fn thread_count_does_not_change_multi_target_estimates() {
        let g = diamond();
        let targets = [NodeId(1), NodeId(2), NodeId(3), NodeId(0)];
        let k = 2 * SHARD_SAMPLES + 31;
        let baseline: Vec<u64> = ParallelSampler::new(Arc::clone(&g), 1)
            .estimate_mc_multi(NodeId(0), &targets, k, 5)
            .iter()
            .map(|e| e.reliability.to_bits())
            .collect();
        for threads in [2, 8] {
            let got: Vec<u64> = ParallelSampler::new(Arc::clone(&g), threads)
                .estimate_mc_multi(NodeId(0), &targets, k, 5)
                .iter()
                .map(|e| e.reliability.to_bits())
                .collect();
            assert_eq!(got, baseline, "{threads} threads diverged");
        }
    }

    #[test]
    fn parallel_mc_converges_to_exact() {
        let g = diamond();
        let exact = exact_reliability(&g, NodeId(0), NodeId(3));
        let est =
            ParallelSampler::new(Arc::clone(&g), 4).estimate_mc(NodeId(0), NodeId(3), 60_000, 11);
        assert!(est.is_valid());
        assert!(
            (est.reliability - exact).abs() < 0.01,
            "{} vs {exact}",
            est.reliability
        );
    }

    #[test]
    fn parallel_bfs_sharing_converges_to_exact() {
        let g = diamond();
        let exact = exact_reliability(&g, NodeId(0), NodeId(3));
        let est = ParallelSampler::new(Arc::clone(&g), 4).estimate_bfs_sharing(
            NodeId(0),
            NodeId(3),
            60_000,
            13,
        );
        assert!(
            (est.reliability - exact).abs() < 0.01,
            "{} vs {exact}",
            est.reliability
        );
    }

    #[test]
    fn multi_target_matches_exact_per_target() {
        let g = diamond();
        let targets = [NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
        let ests = ParallelSampler::new(Arc::clone(&g), 4).estimate_mc_multi(
            NodeId(0),
            &targets,
            60_000,
            3,
        );
        for (&t, est) in targets.iter().zip(&ests) {
            let exact = exact_reliability(&g, NodeId(0), t);
            assert!(
                (est.reliability - exact).abs() < 0.01,
                "target {t}: {} vs {exact}",
                est.reliability
            );
        }
        // s is its own target: reached in every world.
        assert_eq!(ests[0].reliability, 1.0);
    }

    #[test]
    fn duplicate_targets_get_identical_estimates() {
        let g = diamond();
        let ests = ParallelSampler::new(Arc::clone(&g), 2).estimate_mc_multi(
            NodeId(0),
            &[NodeId(3), NodeId(3)],
            1000,
            9,
        );
        assert_eq!(ests[0].reliability.to_bits(), ests[1].reliability.to_bits());
    }

    #[test]
    fn multi_with_one_distinct_target_matches_estimate_mc() {
        // The engine folds a batch of queries sharing (s, budget, seed)
        // into one multi-target call; when that batch collapses to a
        // single distinct target it must answer bit-identically to the
        // single-query path.
        let g = diamond();
        let sampler = ParallelSampler::new(Arc::clone(&g), 4);
        let single = sampler.estimate_mc(NodeId(0), NodeId(3), 4000, 7);
        let multi = sampler.estimate_mc_multi(NodeId(0), &[NodeId(3), NodeId(3)], 4000, 7);
        for est in &multi {
            assert_eq!(single.reliability.to_bits(), est.reliability.to_bits());
        }
    }

    #[test]
    fn disconnected_target_is_zero() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.9).unwrap();
        let g = Arc::new(b.build());
        let est = ParallelSampler::new(g, 4).estimate_mc(NodeId(0), NodeId(2), 2000, 1);
        assert_eq!(est.reliability, 0.0);
    }

    #[test]
    fn thread_count_does_not_change_topk_ranking() {
        let g = diamond();
        let k_samples = 3 * SHARD_SAMPLES + 17;
        let baseline =
            ParallelSampler::new(Arc::clone(&g), 1).top_k_targets(NodeId(0), 3, k_samples, 11);
        for threads in [2, 8] {
            let got = ParallelSampler::new(Arc::clone(&g), threads).top_k_targets(
                NodeId(0),
                3,
                k_samples,
                11,
            );
            assert_eq!(got.scores.len(), baseline.scores.len());
            for (a, b) in got.scores.iter().zip(&baseline.scores) {
                assert_eq!(a.node, b.node);
                assert_eq!(a.reliability.to_bits(), b.reliability.to_bits());
            }
        }
        // Ranking truth on the diamond: 2 (0.6) leads; 3 (0.506) and
        // 1 (0.5) are a near-tie, so only the leader is asserted.
        assert_eq!(baseline.scores.len(), 3);
        assert_eq!(baseline.scores[0].node, NodeId(2));
    }

    #[test]
    fn adaptive_topk_is_thread_invariant_and_stops_early() {
        let g = diamond();
        let budget = SampleBudget::adaptive(0.1, 100_000);
        let baseline =
            ParallelSampler::new(Arc::clone(&g), 1).top_k_targets_with(NodeId(0), 3, &budget, 5);
        assert_eq!(baseline.stop_reason, StopReason::Converged);
        assert!(baseline.samples < 100_000, "used {}", baseline.samples);
        for threads in [2, 8] {
            let got = ParallelSampler::new(Arc::clone(&g), threads).top_k_targets_with(
                NodeId(0),
                3,
                &budget,
                5,
            );
            assert_eq!(got.samples, baseline.samples);
            assert_eq!(got.stop_reason, baseline.stop_reason);
            for (a, b) in got.scores.iter().zip(&baseline.scores) {
                assert_eq!(a.reliability.to_bits(), b.reliability.to_bits());
            }
        }
    }

    #[test]
    fn parallel_distance_constrained_matches_exact() {
        use crate::distance_constrained::exact_distance_constrained;
        let g = diamond();
        let sampler = ParallelSampler::new(Arc::clone(&g), 4);
        for d in [1usize, 2, 3] {
            let exact = exact_distance_constrained(&g, NodeId(0), NodeId(3), d);
            let est = sampler.estimate_distance_constrained(NodeId(0), NodeId(3), d, 60_000, 13);
            assert!(
                (est.reliability - exact).abs() < 0.01,
                "d={d}: {} vs {exact}",
                est.reliability
            );
        }
        // No path of length 1 exists: exactly zero.
        assert_eq!(
            sampler
                .estimate_distance_constrained(NodeId(0), NodeId(3), 1, 2000, 1)
                .reliability,
            0.0
        );
    }

    #[test]
    fn thread_count_does_not_change_distance_constrained_estimates() {
        let g = diamond();
        let k = 2 * SHARD_SAMPLES + 77;
        let baseline = ParallelSampler::new(Arc::clone(&g), 1).estimate_distance_constrained(
            NodeId(0),
            NodeId(3),
            2,
            k,
            3,
        );
        let adaptive_budget = SampleBudget::adaptive(0.08, 50_000);
        let adaptive_baseline = ParallelSampler::new(Arc::clone(&g), 1)
            .estimate_distance_constrained_with(NodeId(0), NodeId(3), 2, &adaptive_budget, 3);
        for threads in [2, 8] {
            let sampler = ParallelSampler::new(Arc::clone(&g), threads);
            let est = sampler.estimate_distance_constrained(NodeId(0), NodeId(3), 2, k, 3);
            assert_eq!(est.reliability.to_bits(), baseline.reliability.to_bits());
            let ad = sampler.estimate_distance_constrained_with(
                NodeId(0),
                NodeId(3),
                2,
                &adaptive_budget,
                3,
            );
            assert_eq!(
                ad.reliability.to_bits(),
                adaptive_baseline.reliability.to_bits()
            );
            assert_eq!(ad.samples, adaptive_baseline.samples);
            assert_eq!(ad.stop_reason, adaptive_baseline.stop_reason);
        }
    }

    #[test]
    fn shard_layout_covers_budget_exactly() {
        for k in [
            1,
            SHARD_SAMPLES - 1,
            SHARD_SAMPLES,
            SHARD_SAMPLES + 1,
            10_000,
        ] {
            let shards = ParallelSampler::shards(k);
            let total: usize = shards.iter().map(|&(_, len)| len).sum();
            assert_eq!(total, k);
            for window in shards.windows(2) {
                assert_eq!(window[0].0 + window[0].1, window[1].0);
            }
        }
    }

    #[test]
    fn shard_rngs_are_decorrelated() {
        let mut a = shard_rng(42, 0);
        let mut b = shard_rng(42, 1);
        use rand::RngCore;
        assert_ne!(a.next_u64(), b.next_u64());
        // Same (seed, shard) reproduces the stream.
        let mut c = shard_rng(42, 0);
        let mut d = shard_rng(42, 0);
        assert_eq!(c.next_u64(), d.next_u64());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_samples() {
        let g = diamond();
        let _ = ParallelSampler::new(g, 2).estimate_mc(NodeId(0), NodeId(3), 0, 1);
    }
}
