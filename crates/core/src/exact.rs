//! Exact s-t reliability by possible-world enumeration (Eq. 2).
//!
//! `#P`-hard in general, so this is a *test oracle*: every estimator in the
//! crate is validated against it on small random graphs. Refuses graphs
//! with more than 26 edges.

use relcomp_ugraph::possible_world::enumerate_worlds;
use relcomp_ugraph::traversal::{bfs_reaches, BfsWorkspace};
use relcomp_ugraph::{NodeId, UncertainGraph};

/// Compute `R(s, t)` exactly by summing `Pr(G)` over all worlds where `t`
/// is reachable from `s`.
///
/// # Panics
/// Panics if the graph has more than 26 edges (enumeration is `2^m`).
pub fn exact_reliability(graph: &UncertainGraph, s: NodeId, t: NodeId) -> f64 {
    assert!(
        graph.contains_node(s) && graph.contains_node(t),
        "query nodes out of range"
    );
    if s == t {
        return 1.0;
    }
    let mut ws = BfsWorkspace::new(graph.num_nodes());
    let mut total = 0.0;
    for world in enumerate_worlds(graph) {
        if bfs_reaches(graph, s, t, &mut ws, |e| world.contains(e)) {
            total += world.probability(graph);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use relcomp_ugraph::GraphBuilder;

    #[test]
    fn series_chain_is_product() {
        // 0 -> 1 -> 2 with p = 0.5, 0.4  =>  R = 0.2
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.4).unwrap();
        let g = b.build();
        assert!((exact_reliability(&g, NodeId(0), NodeId(2)) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn parallel_edges_via_two_paths() {
        // 0 -> 1 -> 3 and 0 -> 2 -> 3, all p = 0.5.
        // Each path works w.p. 0.25; R = 1 - (1 - 0.25)^2 = 0.4375.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.5).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.5).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.5).unwrap();
        let g = b.build();
        assert!((exact_reliability(&g, NodeId(0), NodeId(3)) - 0.4375).abs() < 1e-12);
    }

    #[test]
    fn s_equals_t_is_one() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 0.1).unwrap();
        let g = b.build();
        assert_eq!(exact_reliability(&g, NodeId(1), NodeId(1)), 1.0);
    }

    #[test]
    fn unreachable_is_zero() {
        // Edge points the wrong way.
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(1), NodeId(0), 0.9).unwrap();
        let g = b.build();
        assert_eq!(exact_reliability(&g, NodeId(0), NodeId(1)), 0.0);
    }

    #[test]
    fn certain_edge_is_one() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let g = b.build();
        assert!((exact_reliability(&g, NodeId(0), NodeId(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bridge_example_from_paper_figure6_subpath() {
        // Triangle: 0 -> 1 (0.5), 0 -> 2 (0.5), 2 -> 1 (0.5).
        // R(0,1) = 1 - (1-0.5)(1-0.25) = 0.625
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.5).unwrap();
        b.add_edge(NodeId(2), NodeId(1), 0.5).unwrap();
        let g = b.build();
        assert!((exact_reliability(&g, NodeId(0), NodeId(1)) - 0.625).abs() < 1e-12);
    }
}
