//! Exact s-t reliability by possible-world enumeration (Eq. 2).
//!
//! `#P`-hard in general, so this is a *test oracle*: every estimator in the
//! crate is validated against it on small random graphs. Refuses graphs
//! with more than 26 edges.

use relcomp_ugraph::possible_world::enumerate_worlds;
use relcomp_ugraph::traversal::{bfs_reaches, BfsWorkspace};
use relcomp_ugraph::{EdgeId, EdgeUpdate, NodeId, UncertainGraph};

/// Compute `R(s, t)` exactly by summing `Pr(G)` over all worlds where `t`
/// is reachable from `s`.
///
/// # Panics
/// Panics if the graph has more than 26 edges (enumeration is `2^m`).
pub fn exact_reliability(graph: &UncertainGraph, s: NodeId, t: NodeId) -> f64 {
    assert!(
        graph.contains_node(s) && graph.contains_node(t),
        "query nodes out of range"
    );
    if s == t {
        return 1.0;
    }
    let mut ws = BfsWorkspace::new(graph.num_nodes());
    let mut total = 0.0;
    for world in enumerate_worlds(graph) {
        if bfs_reaches(graph, s, t, &mut ws, |e| world.contains(e)) {
            total += world.probability(graph);
        }
    }
    total
}

/// Exhaustively search every size-`k` subset of `candidates` for the one
/// whose application maximizes exact `R(s, t)` — the oracle the greedy
/// [`maximize`](crate::maximize) optimizer is validated against.
///
/// Subsets are enumerated in lexicographic candidate order and ties keep
/// the first (lexicographically smallest) maximizer, so the answer is
/// deterministic. Returns the winning candidates' edge ids (in candidate
/// order) and the exact reliability with them applied. `k` larger than
/// the pool clamps to the whole pool; `k == 0` returns the unmodified
/// graph's reliability and an empty set.
///
/// # Panics
/// Panics if the graph has more than 26 edges (each subset costs a full
/// `2^m` world enumeration) — this is a small-instance test oracle.
pub fn exact_best_upgrade_set(
    graph: &UncertainGraph,
    s: NodeId,
    t: NodeId,
    candidates: &[EdgeUpdate],
    k: usize,
) -> (Vec<EdgeId>, f64) {
    let k = k.min(candidates.len());
    if k == 0 {
        return (Vec::new(), exact_reliability(graph, s, t));
    }
    // Lexicographic combination walk over candidate indices.
    let mut idx: Vec<usize> = (0..k).collect();
    let mut best_set: Vec<EdgeId> = Vec::new();
    let mut best_rel = f64::NEG_INFINITY;
    loop {
        let updates: Vec<EdgeUpdate> = idx.iter().map(|&i| candidates[i]).collect();
        let upgraded = graph.with_updated_probs(&updates);
        let rel = exact_reliability(&upgraded, s, t);
        if rel > best_rel {
            best_rel = rel;
            best_set = updates.iter().map(|u| u.edge).collect();
        }
        // Advance to the next combination, rightmost index first.
        let mut pos = k;
        while pos > 0 {
            pos -= 1;
            if idx[pos] < candidates.len() - (k - pos) {
                idx[pos] += 1;
                for later in pos + 1..k {
                    idx[later] = idx[later - 1] + 1;
                }
                break;
            }
            if pos == 0 {
                return (best_set, best_rel);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relcomp_ugraph::GraphBuilder;

    #[test]
    fn series_chain_is_product() {
        // 0 -> 1 -> 2 with p = 0.5, 0.4  =>  R = 0.2
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.4).unwrap();
        let g = b.build();
        assert!((exact_reliability(&g, NodeId(0), NodeId(2)) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn parallel_edges_via_two_paths() {
        // 0 -> 1 -> 3 and 0 -> 2 -> 3, all p = 0.5.
        // Each path works w.p. 0.25; R = 1 - (1 - 0.25)^2 = 0.4375.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.5).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.5).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.5).unwrap();
        let g = b.build();
        assert!((exact_reliability(&g, NodeId(0), NodeId(3)) - 0.4375).abs() < 1e-12);
    }

    #[test]
    fn s_equals_t_is_one() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 0.1).unwrap();
        let g = b.build();
        assert_eq!(exact_reliability(&g, NodeId(1), NodeId(1)), 1.0);
    }

    #[test]
    fn unreachable_is_zero() {
        // Edge points the wrong way.
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(1), NodeId(0), 0.9).unwrap();
        let g = b.build();
        assert_eq!(exact_reliability(&g, NodeId(0), NodeId(1)), 0.0);
    }

    #[test]
    fn certain_edge_is_one() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let g = b.build();
        assert!((exact_reliability(&g, NodeId(0), NodeId(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn best_upgrade_set_prefers_the_series_pair() {
        // Chain 0 -> 1 -> 3 (p = 0.1, 0.1) vs direct 0 -> 3 (p = 0.3):
        // the best 2-upgrade set to certainty is the chain (R = 1.0),
        // which no greedy-by-single-gain order would rank first.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.1).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.1).unwrap();
        b.add_edge(NodeId(0), NodeId(3), 0.3).unwrap();
        let g = b.build();
        let cands: Vec<EdgeUpdate> = g
            .edges()
            .map(|(e, _, _, _)| EdgeUpdate::new(e, 1.0).unwrap())
            .collect();
        let (set, rel) = exact_best_upgrade_set(&g, NodeId(0), NodeId(3), &cands, 2);
        assert_eq!(set, vec![EdgeId(0), EdgeId(1)]);
        assert!((rel - 1.0).abs() < 1e-12);
        // k = 0 is the plain exact answer; k beyond the pool clamps.
        let (empty, base) = exact_best_upgrade_set(&g, NodeId(0), NodeId(3), &cands, 0);
        assert!(empty.is_empty());
        assert!((base - exact_reliability(&g, NodeId(0), NodeId(3))).abs() < 1e-12);
        let (all, full) = exact_best_upgrade_set(&g, NodeId(0), NodeId(3), &cands, 9);
        assert_eq!(all.len(), 3);
        assert!((full - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bridge_example_from_paper_figure6_subpath() {
        // Triangle: 0 -> 1 (0.5), 0 -> 2 (0.5), 2 -> 1 (0.5).
        // R(0,1) = 1 - (1-0.5)(1-0.25) = 0.625
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.5).unwrap();
        b.add_edge(NodeId(2), NodeId(1), 0.5).unwrap();
        let g = b.build();
        assert!((exact_reliability(&g, NodeId(0), NodeId(1)) - 0.625).abs() < 1e-12);
    }
}
