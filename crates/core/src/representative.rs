//! Representative possible worlds — the "one good deterministic
//! instance" branch of the paper's Figure 2 spectrum (Parchas et al.,
//! SIGMOD'14 [33]; Song et al. [37]).
//!
//! Instead of sampling thousands of worlds per query, extract *one*
//! deterministic graph that preserves structural expectations, then
//! answer queries on it with plain BFS. We implement the two classic
//! extractors:
//!
//! * [`most_probable_world`] — include edge `e` iff `p(e) >= 0.5`
//!   (maximizes world probability under independence);
//! * [`average_degree_world`] (ADR-style) — greedily pick edges, highest
//!   probability first, while a node's included out-degree stays below
//!   its expected out-degree (rounded); preserves per-node expected
//!   degrees far better than thresholding on skewed graphs.
//!
//! These are *heuristics*: a reachability answer on a representative
//! world is 0/1, not a probability. Tests verify the structural
//! guarantees (degree preservation, determinism), not estimator accuracy.

use relcomp_ugraph::possible_world::PossibleWorld;
use relcomp_ugraph::{NodeId, UncertainGraph};

/// The threshold world: edge present iff `p(e) >= 0.5`.
pub fn most_probable_world(graph: &UncertainGraph) -> PossibleWorld {
    let mut world = PossibleWorld::empty(graph.num_edges());
    for (e, _, _, p) in graph.edges() {
        if p.value() >= 0.5 {
            world.set(e, true);
        }
    }
    world
}

/// ADR-style degree-preserving world: per source node, keep its highest-
/// probability out-edges until the node's *expected* out-degree (sum of
/// its edge probabilities, rounded to nearest) is met.
pub fn average_degree_world(graph: &UncertainGraph) -> PossibleWorld {
    let mut world = PossibleWorld::empty(graph.num_edges());
    for v in graph.nodes() {
        let mut out: Vec<(relcomp_ugraph::EdgeId, f64)> = graph
            .out_edges(v)
            .map(|(e, _)| (e, graph.prob(e).value()))
            .collect();
        if out.is_empty() {
            continue;
        }
        let expected: f64 = out.iter().map(|&(_, p)| p).sum();
        let budget = expected.round() as usize;
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        for &(e, _) in out.iter().take(budget) {
            world.set(e, true);
        }
    }
    world
}

/// Sum over nodes of |expected out-degree − included out-degree| — the
/// degree-discrepancy objective the ADR heuristic minimizes.
pub fn degree_discrepancy(graph: &UncertainGraph, world: &PossibleWorld) -> f64 {
    let mut total = 0.0;
    for v in graph.nodes() {
        let expected: f64 = graph.out_edges(v).map(|(e, _)| graph.prob(e).value()).sum();
        let included = graph
            .out_edges(v)
            .filter(|&(e, _)| world.contains(e))
            .count() as f64;
        total += (expected - included).abs();
    }
    total
}

/// Answer an s-t query on a representative world (0/1 reachability).
pub fn representative_reaches(
    graph: &UncertainGraph,
    world: &PossibleWorld,
    s: NodeId,
    t: NodeId,
) -> bool {
    world.reaches(graph, s, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relcomp_ugraph::{Dataset, GraphBuilder};

    #[test]
    fn threshold_world_definition() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.6).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.4).unwrap();
        let g = b.build();
        let w = most_probable_world(&g);
        assert!(w.contains(g.find_edge(NodeId(0), NodeId(1)).unwrap()));
        assert!(!w.contains(g.find_edge(NodeId(1), NodeId(2)).unwrap()));
    }

    #[test]
    fn adr_keeps_expected_degree() {
        // One node with four 0.5 edges: expected degree 2 -> keep 2 edges.
        let mut b = GraphBuilder::new(5);
        for i in 1..5u32 {
            b.add_edge(NodeId(0), NodeId(i), 0.5).unwrap();
        }
        let g = b.build();
        let w = average_degree_world(&g);
        assert_eq!(w.num_present(), 2);
    }

    #[test]
    fn adr_beats_threshold_on_low_probability_hubs() {
        // Threshold drops ALL edges of a low-probability hub; ADR keeps
        // the expected number. NetHEPT-like probabilities make this stark.
        let g = Dataset::NetHept.generate_with_scale(0.05, 3);
        let thr = most_probable_world(&g);
        let adr = average_degree_world(&g);
        let d_thr = degree_discrepancy(&g, &thr);
        let d_adr = degree_discrepancy(&g, &adr);
        assert!(
            d_adr < d_thr,
            "ADR discrepancy {d_adr} should beat threshold {d_thr}"
        );
    }

    #[test]
    fn representative_queries_are_deterministic() {
        let g = Dataset::LastFm.generate_with_scale(0.05, 9);
        let w1 = average_degree_world(&g);
        let w2 = average_degree_world(&g);
        assert_eq!(w1, w2);
        let (s, t) = (NodeId(0), NodeId(5));
        assert_eq!(
            representative_reaches(&g, &w1, s, t),
            representative_reaches(&g, &w2, s, t)
        );
    }

    #[test]
    fn certain_graph_world_is_complete() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        let g = b.build();
        for w in [most_probable_world(&g), average_degree_world(&g)] {
            assert_eq!(w.num_present(), 2);
            assert!(representative_reaches(&g, &w, NodeId(0), NodeId(2)));
        }
    }
}
