//! Vendored `#[derive(Serialize, Deserialize)]` macros for the shim
//! [`serde`] crate.
//!
//! Implemented with hand-rolled token parsing (the container has neither
//! `syn` nor `quote`). Supports the shapes this workspace uses:
//!
//! * structs with named fields — serialized as JSON objects in field
//!   declaration order;
//! * single-field tuple structs (newtypes, `#[serde(transparent)]` or
//!   not) — serialized as the inner value, matching upstream serde;
//! * fieldless enums — serialized as the variant name string.
//!
//! Anything else (generics, data-carrying enums, unions) is rejected with
//! a compile error naming the unsupported shape.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` for a supported item shape.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derive `serde::Deserialize` for a supported item shape.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Item {
    /// `struct Name { a: T, b: U }`
    Struct { name: String, fields: Vec<String> },
    /// `struct Name(T);`
    Newtype { name: String },
    /// `enum Name { A, B, C }`
    Enum { name: String, variants: Vec<String> },
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => generate(&item, mode),
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

/// `true` for an identifier token equal to `word`.
fn is_ident(tok: Option<&TokenTree>, word: &str) -> bool {
    matches!(tok, Some(TokenTree::Ident(i)) if i.to_string() == word)
}

fn is_punct(tok: Option<&TokenTree>, ch: char) -> bool {
    matches!(tok, Some(TokenTree::Punct(p)) if p.as_char() == ch)
}

/// Skip `#[...]` attribute groups starting at `i`; returns the next index.
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> usize {
    while is_punct(toks.get(i), '#') {
        i += 2; // '#' then the bracketed group
    }
    i
}

/// Skip `pub` / `pub(...)` starting at `i`; returns the next index.
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if is_ident(toks.get(i), "pub") {
        i += 1;
        if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&toks, skip_attrs(&toks, 0));

    let keyword = match toks.get(i) {
        Some(TokenTree::Ident(kw)) => kw.to_string(),
        other => {
            return Err(format!(
                "serde shim derive: expected item keyword, found {other:?}"
            ))
        }
    };
    i += 1;

    let name = match toks.get(i) {
        Some(TokenTree::Ident(n)) => n.to_string(),
        other => {
            return Err(format!(
                "serde shim derive: expected item name, found {other:?}"
            ))
        }
    };
    i += 1;

    if is_punct(toks.get(i), '<') {
        return Err(format!(
            "serde shim derive: generic type `{name}` is unsupported"
        ));
    }

    match keyword.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Struct {
                fields: parse_named_fields(g.stream(), &name)?,
                name,
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if count_top_level_fields(&inner) != 1 {
                    return Err(format!(
                        "serde shim derive: tuple struct `{name}` must have exactly one field"
                    ));
                }
                Ok(Item::Newtype { name })
            }
            other => Err(format!(
                "serde shim derive: unsupported struct body {other:?}"
            )),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                variants: parse_fieldless_variants(g.stream(), &name)?,
                name,
            }),
            other => Err(format!(
                "serde shim derive: unsupported enum body {other:?}"
            )),
        },
        other => Err(format!(
            "serde shim derive: unsupported item kind `{other}`"
        )),
    }
}

/// Count comma-separated entries at angle-bracket depth 0.
fn count_top_level_fields(toks: &[TokenTree]) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_tokens = false;
    for tok in toks {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    fields + usize::from(saw_tokens)
}

fn parse_named_fields(stream: TokenStream, name: &str) -> Result<Vec<String>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_vis(&toks, skip_attrs(&toks, i));
        if i >= toks.len() {
            break;
        }
        let field = match toks.get(i) {
            Some(TokenTree::Ident(f)) => f.to_string(),
            other => {
                return Err(format!(
                    "serde shim derive: expected field name in `{name}`, found {other:?}"
                ))
            }
        };
        i += 1;
        if !is_punct(toks.get(i), ':') {
            return Err(format!(
                "serde shim derive: expected `:` after field `{field}` in `{name}`"
            ));
        }
        i += 1;
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(field);
    }
    Ok(fields)
}

fn parse_fieldless_variants(stream: TokenStream, name: &str) -> Result<Vec<String>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs(&toks, i);
        if i >= toks.len() {
            break;
        }
        let variant = match toks.get(i) {
            Some(TokenTree::Ident(v)) => v.to_string(),
            other => {
                return Err(format!(
                    "serde shim derive: expected variant name in `{name}`, found {other:?}"
                ))
            }
        };
        i += 1;
        if matches!(toks.get(i), Some(TokenTree::Group(_))) {
            return Err(format!(
                "serde shim derive: enum `{name}` variant `{variant}` carries data (unsupported)"
            ));
        }
        if toks.get(i).is_some() && !is_punct(toks.get(i), ',') {
            return Err(format!(
                "serde shim derive: unexpected token after variant `{variant}` in `{name}`"
            ));
        }
        i += 1; // the comma (or past the end)
        variants.push(variant);
    }
    Ok(variants)
}

fn generate(item: &Item, mode: Mode) -> String {
    match (item, mode) {
        (Item::Struct { name, fields }, Mode::Serialize) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "#[automatically_derived]
                impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        ::serde::Value::Object(::std::vec![{entries}])
                    }}
                }}"
            )
        }
        (Item::Struct { name, fields }, Mode::Deserialize) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::get_field(fields, {f:?}, {name:?})?)?,"
                    )
                })
                .collect();
            format!(
                "#[automatically_derived]
                impl ::serde::Deserialize for {name} {{
                    fn from_value(value: &::serde::Value)
                        -> ::std::result::Result<Self, ::serde::DeError> {{
                        let fields = value.as_object().ok_or_else(||
                            ::serde::DeError::expected(\"object\", {name:?}, value))?;
                        ::std::result::Result::Ok(Self {{ {entries} }})
                    }}
                }}"
            )
        }
        (Item::Newtype { name }, Mode::Serialize) => format!(
            "#[automatically_derived]
            impl ::serde::Serialize for {name} {{
                fn to_value(&self) -> ::serde::Value {{
                    ::serde::Serialize::to_value(&self.0)
                }}
            }}"
        ),
        (Item::Newtype { name }, Mode::Deserialize) => format!(
            "#[automatically_derived]
            impl ::serde::Deserialize for {name} {{
                fn from_value(value: &::serde::Value)
                    -> ::std::result::Result<Self, ::serde::DeError> {{
                    ::std::result::Result::Ok(Self(::serde::Deserialize::from_value(value)?))
                }}
            }}"
        ),
        (Item::Enum { name, variants }, Mode::Serialize) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "Self::{v} => ::serde::Value::String(\
                         ::std::string::String::from({v:?})),"
                    )
                })
                .collect();
            format!(
                "#[automatically_derived]
                impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        match self {{ {arms} }}
                    }}
                }}"
            )
        }
        (Item::Enum { name, variants }, Mode::Deserialize) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("::std::option::Option::Some({v:?}) => ::std::result::Result::Ok(Self::{v}),"))
                .collect();
            format!(
                "#[automatically_derived]
                impl ::serde::Deserialize for {name} {{
                    fn from_value(value: &::serde::Value)
                        -> ::std::result::Result<Self, ::serde::DeError> {{
                        match value.as_str() {{
                            {arms}
                            ::std::option::Option::Some(other) =>
                                ::std::result::Result::Err(::serde::DeError::custom(
                                    ::std::format!(\"unknown {name} variant `{{other}}`\"))),
                            ::std::option::Option::None =>
                                ::std::result::Result::Err(::serde::DeError::expected(
                                    \"string\", {name:?}, value)),
                        }}
                    }}
                }}"
            )
        }
    }
}
