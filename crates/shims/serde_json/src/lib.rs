//! Vendored, API-compatible subset of [`serde_json`]: a JSON printer and
//! recursive-descent parser over the shim `serde` [`Value`] model.
//!
//! Supports the workspace's usage: [`to_string`], [`to_string_pretty`],
//! and [`from_str`] for types deriving the shim serde traits. Numbers are
//! printed losslessly for integers up to 64 bits and via `{:?}` (shortest
//! round-trip representation) for floats.
//!
//! [`serde_json`]: https://crates.io/crates/serde_json

#![warn(missing_docs)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Error produced by JSON parsing or value conversion.
#[derive(Clone, Debug, PartialEq)]
pub struct Error {
    message: String,
    /// 1-based line of the error, when it came from text parsing.
    line: Option<usize>,
}

impl Error {
    fn syntax(message: impl Into<String>, line: usize) -> Self {
        Error {
            message: message.into(),
            line: Some(line),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "{} at line {line}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error {
            message: e.to_string(),
            line: None,
        }
    }
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indentation).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_complete(text)?;
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => write_float(out, *x),
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => write_seq(out, indent, depth, items.len(), '[', ']', |out, i, d| {
            write_value(out, &items[i], indent, d)
        }),
        Value::Object(fields) => {
            write_seq(out, indent, depth, fields.len(), '{', '}', |out, i, d| {
                let (key, v) = &fields[i];
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, d)
            })
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(width * (depth + 1)));
        }
        write_item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
    out.push(close);
}

fn write_float(out: &mut String, x: f64) {
    if x.is_finite() {
        // `{:?}` is the shortest representation that round-trips; ensure
        // a decimal point or exponent so the value re-parses as a float.
        let s = format!("{x:?}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Infinity; follow upstream in emitting null.
        out.push_str("null");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

fn parse_value_complete(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        line: 1,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::syntax(
            "trailing characters after JSON value",
            p.line,
        ));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::syntax(
                format!("expected `{}`", b as char),
                self.line,
            ))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::syntax(
                format!("unexpected character `{}`", b as char),
                self.line,
            )),
            None => Err(Error::syntax("unexpected end of input", self.line)),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::syntax(
                format!("invalid literal, expected `{word}`"),
                self.line,
            ))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::syntax("expected `,` or `]` in array", self.line)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::syntax("expected `,` or `}` in object", self.line)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => self.parse_escape(&mut out)?,
                Some(b) if b < 0x80 => {
                    if b == b'\n' {
                        self.line += 1;
                    }
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one multi-byte UTF-8 scalar. The input came
                    // from a `&str`, so the leading byte reliably encodes
                    // the sequence length and the sequence is valid.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| Error::syntax("invalid UTF-8", self.line))?;
                    let c = chunk.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += len;
                }
                None => return Err(Error::syntax("unterminated string", self.line)),
            }
        }
    }

    /// Decode one backslash escape (cursor on the `\`), including
    /// surrogate-pair `\uD800-\uDBFF` + `\uDC00-\uDFFF` sequences.
    fn parse_escape(&mut self, out: &mut String) -> Result<(), Error> {
        self.pos += 1; // the backslash
        let b = self
            .peek()
            .ok_or_else(|| Error::syntax("unterminated escape", self.line))?;
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'u' => {
                let hi = self.read_hex4()?;
                let c = match hi {
                    0xD800..=0xDBFF => {
                        // High surrogate: a `\uXXXX` low surrogate must follow.
                        if self.peek() != Some(b'\\') || self.bytes.get(self.pos + 1) != Some(&b'u')
                        {
                            return Err(Error::syntax("unpaired high surrogate", self.line));
                        }
                        self.pos += 2;
                        let lo = self.read_hex4()?;
                        if !(0xDC00..=0xDFFF).contains(&lo) {
                            return Err(Error::syntax(
                                "expected low surrogate after high surrogate",
                                self.line,
                            ));
                        }
                        let scalar = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        char::from_u32(scalar).expect("valid supplementary-plane scalar")
                    }
                    0xDC00..=0xDFFF => {
                        return Err(Error::syntax("unpaired low surrogate", self.line));
                    }
                    _ => char::from_u32(hi).expect("BMP non-surrogate is a valid char"),
                };
                out.push(c);
            }
            _ => return Err(Error::syntax("invalid escape", self.line)),
        }
        Ok(())
    }

    /// Read 4 hex digits (cursor just past `\u`), advancing past them.
    fn read_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| Error::syntax("invalid \\u escape", self.line))?;
        self.pos += 4;
        Ok(hex)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::syntax("invalid number", self.line))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::syntax(format!("invalid number `{text}`"), self.line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("mc sampling".into())),
            ("k".into(), Value::Int(8000)),
            ("rho".into(), Value::Float(0.001)),
            (
                "history".into(),
                Value::Array(vec![Value::Float(0.25), Value::Int(3)]),
            ),
            ("converged".into(), Value::Bool(true)),
            ("note".into(), Value::Null),
        ]);
        for text in [
            to_string(&Wrap(v.clone())).unwrap(),
            to_string_pretty(&Wrap(v.clone())).unwrap(),
        ] {
            let back: WrapDe = from_str(&text).unwrap();
            assert_eq!(back.0, v);
        }
    }

    struct Wrap(Value);
    impl Serialize for Wrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[derive(Debug)]
    struct WrapDe(Value);
    impl Deserialize for WrapDe {
        fn from_value(value: &Value) -> Result<Self, DeError> {
            Ok(WrapDe(value.clone()))
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line1\nline2\t\"quoted\" \\ done — ünïcode 日本語 🦀";
        let text = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn surrogate_pairs_decode_and_lone_surrogates_error() {
        // Python json.dumps-style ensure_ascii output for "😀".
        let back: String = from_str(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(back, "😀");
        let back: String = from_str(r#""pre \ud83d\ude00 post""#).unwrap();
        assert_eq!(back, "pre 😀 post");
        // BMP escapes still work.
        let back: String = from_str(r#""\u00e9\u65e5""#).unwrap();
        assert_eq!(back, "é日");
        // Lone or mispaired surrogates are parse errors, not U+FFFD.
        assert!(from_str::<String>(r#""\ud83d""#).is_err());
        assert!(from_str::<String>(r#""\ud83dA""#).is_err());
        assert!(from_str::<String>(r#""\ude00""#).is_err());
    }

    #[test]
    fn large_strings_parse_in_linear_time() {
        let s = "x".repeat(1_000_000) + "日本語";
        let text = to_string(&s).unwrap();
        let start = std::time::Instant::now();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
        // Quadratic re-validation took minutes here; linear is instant.
        assert!(start.elapsed().as_secs() < 5, "string parse too slow");
    }

    #[test]
    fn floats_reparse_exactly() {
        for x in [0.1, 1.0, -2.5e-8, 123456.789, 1e300] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, x, "{text}");
        }
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = from_str::<f64>("[\n1,\n]").unwrap_err();
        assert!(err.to_string().contains("line"), "{err}");
        assert!(from_str::<f64>("1 trailing").is_err());
        assert!(from_str::<f64>("{unquoted: 1}").is_err());
    }
}
