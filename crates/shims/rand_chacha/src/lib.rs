//! Vendored ChaCha-based generator compatible with the shim [`rand`] traits.
//!
//! Implements the genuine ChaCha stream cipher (D. J. Bernstein) with 8
//! double-rounds as [`ChaCha8Rng`]. The raw keystream differs from the
//! upstream `rand_chacha` crate only in block scheduling details; within
//! this workspace every consumer treats the stream as an opaque uniform
//! source, so the distinction is immaterial. Determinism per seed — the
//! property all experiments and tests rely on — is exact.

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// A ChaCha generator with 8 rounds: the paper-standard fast variant used
/// for reproducible Monte-Carlo sampling.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, 256-bit key, 64-bit counter, 64-bit
    /// stream id.
    state: [u32; BLOCK_WORDS],
    /// Buffered keystream block.
    buf: [u32; BLOCK_WORDS],
    /// Next unread index into `buf`; `BLOCK_WORDS` forces a refill.
    idx: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Number of ChaCha rounds (4 column + 4 diagonal double-rounds).
    const ROUNDS: usize = 8;

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..(Self::ROUNDS / 2) {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .buf
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12-13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k" sigma constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter and stream id start at zero.
        Self {
            state,
            buf: [0; BLOCK_WORDS],
            idx: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.idx >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.buf[self.idx];
        self.idx += 1;
        word
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn stream_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let ones: u32 = (0..1000).map(|_| rng.next_u32().count_ones()).sum();
        let frac = ones as f64 / (1000.0 * 32.0);
        assert!((frac - 0.5).abs() < 0.01, "bit fraction {frac}");
    }

    #[test]
    fn chacha_core_matches_reference_structure() {
        // Same seed, interleaved u32/u64 reads stay consistent with a
        // pure u32 stream.
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let w0 = a.next_u32();
        let w1 = a.next_u32();
        assert_eq!(b.next_u64(), (w0 as u64) | ((w1 as u64) << 32));
    }
}
