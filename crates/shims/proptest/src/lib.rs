//! Vendored, API-compatible subset of [`proptest`].
//!
//! Implements the surface this workspace's property tests use: the
//! [`Strategy`] trait over numeric ranges, tuples, [`Just`],
//! `prop_flat_map`, [`collection::vec`], the [`proptest!`] macro with
//! `#![proptest_config(...)]`, and the `prop_assert!` / `prop_assert_eq!`
//! / `prop_assume!` assertion macros.
//!
//! Unlike upstream there is **no shrinking**: a failing case panics with
//! the case number and the run seed, which is enough to reproduce (runs
//! are deterministic; set `PROPTEST_SEED` to vary them).
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![warn(missing_docs)]

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::ops::Range;

/// The random source handed to strategies; deterministic per run.
pub type TestRng = ChaCha8Rng;

/// Why a single generated test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: the case is discarded, not counted.
    Reject,
    /// `prop_assert!`-style failure: the property is violated.
    Fail(String),
}

/// Configuration for one `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Cap on discarded cases before the run aborts.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 0,
        }
    }
}

impl ProptestConfig {
    /// A config requiring `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            max_global_rejects: 0,
        }
    }

    fn reject_budget(&self) -> u32 {
        if self.max_global_rejects > 0 {
            self.max_global_rejects
        } else {
            // Generous default: assumes may discard most cases.
            self.cases.saturating_mul(64).max(1024)
        }
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Derive a strategy whose generation depends on a value from `self`
    /// (monadic bind).
    fn prop_flat_map<T: Strategy, F: Fn(Self::Value) -> T>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    /// Derive a strategy mapping generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, f32, f64);

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Strategies for collections, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// A strategy producing `Vec`s with length drawn from `size` and
    /// elements drawn from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Build a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Drive one property: generate cases until `config.cases` pass, a case
/// fails, or the reject budget is exhausted. Called by [`proptest!`];
/// not part of the upstream API.
#[doc(hidden)]
pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x9E3779B97F4A7C15);
    let mut rng = TestRng::seed_from_u64(seed);
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    let mut attempt: u32 = 0;
    while passed < config.cases {
        attempt += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > config.reject_budget() {
                    panic!(
                        "proptest `{name}`: too many rejected cases \
                         ({rejected} rejects, {passed} passes, seed {seed})"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed at case #{attempt} (seed {seed}): {msg}");
            }
        }
    }
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `left == right`\n  left: {left:?}\n right: {right:?}"
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Discard the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests, mirroring `proptest::proptest!`.
///
/// Each `fn name(pat in strategy, ...) { body }` becomes a `#[test]`
/// that generates inputs from the strategies and runs the body per case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_proptest(config, ::std::stringify!($name), |__proptest_rng| {
                $(let $pat = $crate::Strategy::generate(&($strategy), __proptest_rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds; tuples and vecs compose.
        #[test]
        fn generated_values_respect_strategies(
            (n, xs) in (2usize..9).prop_flat_map(|n| {
                (Just(n), collection::vec(0.5f64..1.0, 1..5))
            }),
            flag in 0u32..2,
        ) {
            prop_assert!((2..9).contains(&n));
            prop_assert!(flag < 2, "flag {flag}");
            prop_assert!(!xs.is_empty() && xs.len() < 5);
            for x in &xs {
                prop_assert!((0.5..1.0).contains(x));
            }
            prop_assert_eq!(n, n);
        }

        /// Assumes discard without failing.
        #[test]
        fn assume_discards(v in 0u64..10) {
            prop_assume!(v % 2 == 0);
            prop_assert!(v % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_number() {
        crate::run_proptest(ProptestConfig::with_cases(8), "demo", |rng| {
            let v = Strategy::generate(&(0u64..100), rng);
            prop_assert!(v < 101);
            prop_assert!(v % 2 == 1, "even value {v}");
            Ok(())
        });
    }

    #[test]
    fn runs_are_deterministic() {
        let collect = || {
            let mut out = Vec::new();
            crate::run_proptest(ProptestConfig::with_cases(16), "det", |rng| {
                out.push(Strategy::generate(&(0u64..1_000_000), rng));
                Ok(())
            });
            out
        };
        assert_eq!(collect(), collect());
    }
}
