//! Vendored, API-compatible subset of [`serde`].
//!
//! The build container has no crates.io access, so this shim provides the
//! slice of serde the workspace uses: `#[derive(Serialize, Deserialize)]`
//! on named-field structs, fieldless enums, and `#[serde(transparent)]`
//! newtypes, consumed through `serde_json`'s string round-trip.
//!
//! Instead of serde's visitor architecture, serialization goes through an
//! explicit self-describing [`Value`] tree — dramatically simpler, and
//! fully adequate for JSON persistence of experiment reports.
//!
//! [`serde`]: https://crates.io/crates/serde

#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;

// Derive macros; `use serde::{Serialize, Deserialize}` picks up both the
// traits below and these macros, exactly like upstream serde's `derive`
// feature.
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree: the intermediate representation between
/// Rust values and wire formats.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// A key-value map preserving insertion order (so serialized structs
    /// keep declaration field order).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object, or `None` for any other variant.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array, or `None` for any other variant.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, or `None` for any other variant.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for the variant, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error produced when a [`Value`] tree does not match the requested type.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(String);

impl DeError {
    /// A free-form error.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }

    /// An "expected X while deserializing Y, found Z" error.
    pub fn expected(what: &str, context: &str, found: &Value) -> Self {
        DeError(format!(
            "expected {what} while deserializing {context}, found {}",
            found.kind()
        ))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Look up a required struct field in an object's field list.
pub fn get_field<'v>(
    fields: &'v [(String, Value)],
    name: &str,
    context: &str,
) -> Result<&'v Value, DeError> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| {
            DeError(format!(
                "missing field `{name}` while deserializing {context}"
            ))
        })
}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from `value`.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", "bool", other)),
        }
    }
}

macro_rules! impl_serde_signed {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: i64 = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| DeError::custom(format!("{u} out of range for {}", stringify!($t))))?,
                    Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e15 => *f as i64,
                    other => return Err(DeError::expected("integer", stringify!($t), other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_serde_unsigned {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(wide),
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: u64 = match value {
                    Value::Int(i) => u64::try_from(*i)
                        .map_err(|_| DeError::custom(format!("{i} out of range for {}", stringify!($t))))?,
                    Value::UInt(u) => *u,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f < 1.9e16 => *f as u64,
                    other => return Err(DeError::expected("integer", stringify!($t), other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64, isize);
impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_float {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(DeError::expected("number", stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", "String", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", "Vec", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::expected("2-element array", "tuple", value)),
        }
    }
}

impl<K: Serialize + Ord, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| {
                    let key = match k.to_value() {
                        Value::String(s) => s,
                        other => to_key_string(&other),
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

fn to_key_string(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::UInt(u) => u.to_string(),
        Value::Float(f) => f.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::String(s) => s.clone(),
        other => format!("{other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        for v in [0usize, 1, 4096, usize::MAX >> 12] {
            assert_eq!(usize::from_value(&v.to_value()).unwrap(), v);
        }
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v = vec![1.0f64, 2.5, -3.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn type_mismatch_is_an_error() {
        assert!(usize::from_value(&Value::String("x".into())).is_err());
        assert!(bool::from_value(&Value::Int(1)).is_err());
        assert!(Vec::<f64>::from_value(&Value::Null).is_err());
    }

    #[test]
    fn missing_field_reports_context() {
        let fields = vec![("a".to_string(), Value::Int(1))];
        let err = get_field(&fields, "b", "Demo").unwrap_err();
        assert!(err.to_string().contains("missing field `b`"));
        assert!(err.to_string().contains("Demo"));
    }
}
