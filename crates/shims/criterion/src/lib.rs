//! Vendored, API-compatible subset of [`criterion`]: a small wall-clock
//! micro-benchmark harness.
//!
//! Supports the surface this workspace's `benches/` use: benchmark
//! groups, [`BenchmarkId`], per-group sample sizes, and timed closures
//! via [`Bencher::iter`]. Reports min/median/mean per benchmark to
//! stdout. No statistical outlier analysis, plots, or baselines — those
//! need the real crate; swap the path dependency for the registry
//! version when network access is available.
//!
//! When the harness runs under `cargo test` (which passes `--test` to
//! bench targets built with `harness = false`), benchmarks are skipped so
//! the test suite stays fast.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver handed to every `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    /// Default number of timed samples per benchmark.
    sample_size: usize,
    /// `true` when invoked by `cargo test`: benchmark bodies are skipped.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 20,
            test_mode,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        if !self.test_mode {
            println!("group {name}");
        }
        BenchmarkGroup {
            criterion: self,
            sample_size: None,
            name,
        }
    }

    /// Run a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        self.run_one(&id.into().label, sample_size, f);
        self
    }

    fn run_one<F>(&mut self, label: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if self.test_mode {
            return;
        }
        let mut bencher = Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        };
        f(&mut bencher);
        report(label, &bencher.samples);
    }
}

/// A set of benchmarks sharing a name prefix and sample-size settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    sample_size: Option<usize>,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&label, sample_size, f);
        self
    }

    /// Finish the group. (The shim emits results eagerly; this is a
    /// no-op kept for API compatibility.)
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Timing context passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, first warming up, then recording `sample_size`
    /// samples. The routine's output is passed through [`black_box`] so
    /// the optimizer cannot delete the computation.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("  {label}: no samples recorded");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "  {label}: min {} | median {} | mean {} ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        sorted.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declare a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark `main` function, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("bfs", 250).label, "bfs/250");
        assert_eq!(BenchmarkId::from_parameter("MC").label, "MC");
        assert_eq!(BenchmarkId::from("plain").label, "plain");
    }

    #[test]
    fn bencher_records_requested_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 5,
        };
        let mut count = 0u32;
        b.iter(|| count += 1);
        assert_eq!(b.samples.len(), 5);
        assert_eq!(count, 6); // warmup + samples
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(12)).contains("ns"));
        assert!(fmt_duration(Duration::from_micros(12)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).contains(" s"));
    }
}
