//! Vendored, API-compatible subset of the [`rand`] crate.
//!
//! The build container has no crates.io access, so this shim implements
//! exactly the surface the workspace uses: [`RngCore`], [`Rng`],
//! [`SeedableRng`], [`seq::SliceRandom`], [`rngs::mock::StepRng`], and
//! [`thread_rng`]. Algorithms are straightforward and deterministic; the
//! statistical quality is more than sufficient for the Monte-Carlo
//! estimators and tests in this workspace.
//!
//! [`rand`]: https://crates.io/crates/rand

#![warn(missing_docs)]

/// The core of a random number generator: raw word and byte output.
///
/// Object-safe, mirroring `rand::RngCore`; estimators in this workspace
/// take `&mut dyn RngCore` on their hot paths.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an RNG's raw output
/// (the shim's equivalent of sampling from `rand`'s `Standard`
/// distribution).
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use the high bit: low bits of some generators are weaker.
        rng.next_u32() & 0x8000_0000 != 0
    }
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `0..span` by widening-multiply rejection (Lemire):
/// unbiased and branch-light for the small spans used here.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let hi = ((x as u128 * span as u128) >> 64) as u64;
        let lo = (x as u128 * span as u128) as u64;
        if lo >= span || lo >= span.wrapping_neg() % span {
            return hi;
        }
    }
}

macro_rules! impl_range_uint {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                // Inclusive count, minus one so a full-domain range (count
                // 2^64 for u64) stays representable: count - 1 == u64::MAX.
                let span_minus_one = (end - start) as u64;
                let Some(span) = span_minus_one.checked_add(1) else {
                    return rng.next_u64() as $t;
                };
                start + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Exact span via two's complement: the true difference is
                // in (0, 2^64), which wrapping i64 arithmetic preserves
                // mod 2^64; narrower types widen losslessly first.
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span_minus_one = (end as i64).wrapping_sub(start as i64) as u64;
                let Some(span) = span_minus_one.checked_add(1) else {
                    return rng.next_u64() as $t;
                };
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// Convenience extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution
    /// (uniform over the type's natural domain; `[0, 1)` for floats).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A reproducible generator constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a fixed-size byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct by expanding a `u64` through SplitMix64, matching the
    /// upstream default's intent (distinct small seeds give well-mixed,
    /// independent states).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        let bytes = seed.as_mut();
        let mut i = 0;
        while i < bytes.len() {
            let word = sm.next_u64().to_le_bytes();
            let n = word.len().min(bytes.len() - i);
            bytes[i..i + n].copy_from_slice(&word[..n]);
            i += n;
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander and the engine behind [`thread_rng`].
#[derive(Clone, Debug)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SplitMix64};

    /// A non-cryptographic generator seeded from process-unique entropy.
    ///
    /// Unlike the upstream thread-local handle this is a plain owned
    /// value, which is all the workspace needs (it appears only in
    /// documentation examples).
    #[derive(Clone, Debug)]
    pub struct ThreadRng(pub(crate) SplitMix64);

    impl RngCore for ThreadRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.0.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Mock generators for deterministic tests, mirroring `rand::rngs::mock`.
    pub mod mock {
        use super::super::RngCore;

        /// A mock generator returning an arithmetic sequence of `u64`s.
        ///
        /// `next_u64` yields `initial`, `initial + increment`,
        /// `initial + 2 * increment`, ... (wrapping); `next_u32` truncates.
        #[derive(Clone, Debug)]
        pub struct StepRng {
            value: u64,
            increment: u64,
        }

        impl StepRng {
            /// Create a new `StepRng`.
            pub fn new(initial: u64, increment: u64) -> Self {
                Self {
                    value: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            #[inline]
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }

            #[inline]
            fn next_u64(&mut self) -> u64 {
                let out = self.value;
                self.value = self.value.wrapping_add(self.increment);
                out
            }
        }
    }
}

/// Return a generator seeded from process-unique entropy (address-space
/// layout and wall clock). Suitable for examples and exploratory use;
/// experiments should seed an explicit generator instead.
pub fn thread_rng() -> rngs::ThreadRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let t = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    let stack_probe = 0u8;
    let aslr = &stack_probe as *const u8 as u64;
    let mut sm = SplitMix64 {
        state: t ^ aslr.rotate_left(32),
    };
    let state = sm.next_u64();
    rngs::ThreadRng(SplitMix64 { state })
}

/// Sequence-related extensions, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices: random choice and shuffling.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Uniformly choose one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffle the slice in place (Fisher-Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..i + 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::*;

    #[test]
    fn step_rng_steps() {
        let mut r = StepRng::new(0, 1);
        assert_eq!(r.next_u64(), 0);
        assert_eq!(r.next_u64(), 1);
        assert_eq!(r.next_u64(), 2);
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut r = thread_rng();
        for _ in 0..1000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_inclusive_handles_domain_edges() {
        let mut r = thread_rng();
        for _ in 0..200 {
            let x: u8 = r.gen_range(1u8..=u8::MAX);
            assert!(x >= 1);
            let _: u64 = r.gen_range(0u64..=u64::MAX);
            let y: u64 = r.gen_range(1u64..=u64::MAX);
            assert!(y >= 1);
            let z: u32 = r.gen_range(5u32..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut r = thread_rng();
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_signed_spans_zero_and_domain_edges() {
        let mut r = thread_rng();
        let mut seen_neg = false;
        let mut seen_pos = false;
        for _ in 0..500 {
            let x = r.gen_range(-3i32..3);
            assert!((-3..3).contains(&x));
            seen_neg |= x < 0;
            seen_pos |= x >= 0;
            let y: i8 = r.gen_range(i8::MIN..=i8::MAX);
            let _ = y; // full domain must not overflow
            let z: i64 = r.gen_range(i64::MIN..i64::MAX);
            assert!(z < i64::MAX);
            let w: i32 = r.gen_range(-5i32..=-5);
            assert_eq!(w, -5);
        }
        assert!(seen_neg && seen_pos, "both signs should appear");
    }

    #[test]
    fn choose_and_shuffle() {
        use super::seq::SliceRandom;
        let mut r = thread_rng();
        let items = [1, 2, 3];
        assert!(items.choose(&mut r).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn seed_from_u64_is_deterministic_via_chacha_like_seed() {
        struct S([u8; 32]);
        impl SeedableRng for S {
            type Seed = [u8; 32];
            fn from_seed(seed: [u8; 32]) -> Self {
                S(seed)
            }
        }
        assert_eq!(S::seed_from_u64(7).0, S::seed_from_u64(7).0);
        assert_ne!(S::seed_from_u64(7).0, S::seed_from_u64(8).0);
    }
}
