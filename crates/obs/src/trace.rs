//! Per-query stage tracing: RAII spans recording a fixed pipeline of stages
//! into a bounded ring buffer of recent query traces.
//!
//! The tracer is deliberately heavier-touch than the counters in
//! [`crate::registry`] — it allocates a small `Vec` per query and takes one
//! mutex hit to publish the finished trace — but it only runs once per
//! query, never per sample, and the ring is bounded ([`TRACE_RING_CAP`]) so
//! memory stays constant under any load.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// Maximum number of recent traces retained; older traces are evicted.
pub const TRACE_RING_CAP: usize = 256;

/// The stages a served query moves through, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Wire-line JSON parsing into a request.
    Parse,
    /// Admission control (inflight limit, batch caps).
    Admission,
    /// Result-cache probe.
    CacheLookup,
    /// Estimator planning (auto selection, budget resolution).
    Plan,
    /// Sampling / estimation proper.
    Sample,
    /// Convergence-rule evaluation inside the adaptive session.
    ConvergenceCheck,
    /// Response serialization back to wire JSON.
    Serialize,
}

impl Stage {
    pub const ALL: [Stage; 7] = [
        Stage::Parse,
        Stage::Admission,
        Stage::CacheLookup,
        Stage::Plan,
        Stage::Sample,
        Stage::ConvergenceCheck,
        Stage::Serialize,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Admission => "admission",
            Stage::CacheLookup => "cache_lookup",
            Stage::Plan => "plan",
            Stage::Sample => "sample",
            Stage::ConvergenceCheck => "convergence_check",
            Stage::Serialize => "serialize",
        }
    }
}

/// One timed stage within a query trace.
#[derive(Debug, Clone)]
pub struct StageTiming {
    pub stage: Stage,
    pub nanos: u64,
}

/// A completed per-query breakdown.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    /// Workload label (`st` / `topk` / `dquery`) or `"?"` if it failed
    /// before classification.
    pub workload: &'static str,
    pub s: u64,
    pub t: u64,
    pub ok: bool,
    pub cached: bool,
    /// Wall time from builder creation to finish.
    pub nanos: u64,
    /// Stages in the order they were recorded; stages that did not run for
    /// this query (e.g. `sample` on a cache hit) are absent.
    pub stages: Vec<StageTiming>,
}

/// Accumulates stage timings for one query. Create at the top of the request
/// path, open [`Span`]s (or call [`TraceBuilder::record`]) around each stage,
/// then [`TraceBuilder::finish`] and push the trace into a [`TraceRing`].
#[derive(Debug)]
pub struct TraceBuilder {
    start: Instant,
    workload: &'static str,
    s: u64,
    t: u64,
    ok: bool,
    cached: bool,
    stages: Vec<StageTiming>,
}

impl Default for TraceBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceBuilder {
    pub fn new() -> Self {
        TraceBuilder {
            start: Instant::now(),
            workload: "?",
            s: 0,
            t: 0,
            ok: false,
            cached: false,
            stages: Vec::with_capacity(Stage::ALL.len()),
        }
    }

    pub fn set_workload(&mut self, workload: &'static str) {
        self.workload = workload;
    }

    pub fn set_pair(&mut self, s: u64, t: u64) {
        self.s = s;
        self.t = t;
    }

    pub fn set_outcome(&mut self, ok: bool, cached: bool) {
        self.ok = ok;
        self.cached = cached;
    }

    /// Record a stage timing measured externally (e.g. handed over from the
    /// sampling session, which splits its own time into sample vs
    /// convergence-check).
    pub fn record(&mut self, stage: Stage, nanos: u64) {
        self.stages.push(StageTiming { stage, nanos });
    }

    pub fn finish(self) -> QueryTrace {
        QueryTrace {
            workload: self.workload,
            s: self.s,
            t: self.t,
            ok: self.ok,
            cached: self.cached,
            nanos: self.start.elapsed().as_nanos() as u64,
            stages: self.stages,
        }
    }
}

/// RAII stage timer: measures from [`Span::enter`] until drop and records
/// into the builder.
pub struct Span<'a> {
    builder: &'a mut TraceBuilder,
    stage: Stage,
    start: Instant,
}

impl<'a> Span<'a> {
    pub fn enter(builder: &'a mut TraceBuilder, stage: Stage) -> Self {
        Span {
            builder,
            stage,
            start: Instant::now(),
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let nanos = self.start.elapsed().as_nanos() as u64;
        self.builder.record(self.stage, nanos);
    }
}

/// Bounded, lock-protected ring of recent query traces.
#[derive(Debug)]
pub struct TraceRing {
    inner: Mutex<VecDeque<QueryTrace>>,
    cap: usize,
}

impl Default for TraceRing {
    fn default() -> Self {
        Self::new(TRACE_RING_CAP)
    }
}

impl TraceRing {
    pub fn new(cap: usize) -> Self {
        TraceRing {
            inner: Mutex::new(VecDeque::with_capacity(cap.min(TRACE_RING_CAP))),
            cap: cap.max(1),
        }
    }

    pub fn push(&self, trace: QueryTrace) {
        let mut q = self.inner.lock().unwrap();
        if q.len() == self.cap {
            q.pop_front();
        }
        q.push_back(trace);
    }

    /// The most recent `n` traces, newest first.
    pub fn recent(&self, n: usize) -> Vec<QueryTrace> {
        let q = self.inner.lock().unwrap();
        q.iter().rev().take(n).cloned().collect()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn span_records_on_drop() {
        let mut b = TraceBuilder::new();
        b.set_workload("st");
        b.set_pair(3, 9);
        {
            let _span = Span::enter(&mut b, Stage::Plan);
            std::thread::sleep(Duration::from_millis(1));
        }
        b.record(Stage::Sample, 42);
        b.set_outcome(true, false);
        let t = b.finish();
        assert_eq!(t.workload, "st");
        assert_eq!((t.s, t.t), (3, 9));
        assert!(t.ok && !t.cached);
        assert_eq!(t.stages.len(), 2);
        assert_eq!(t.stages[0].stage, Stage::Plan);
        assert!(t.stages[0].nanos >= 1_000_000);
        assert_eq!(t.stages[1].stage, Stage::Sample);
        assert_eq!(t.stages[1].nanos, 42);
        assert!(t.nanos >= t.stages[0].nanos);
    }

    #[test]
    fn ring_evicts_oldest() {
        let ring = TraceRing::new(2);
        for i in 0..3u64 {
            let mut b = TraceBuilder::new();
            b.set_pair(i, i);
            ring.push(b.finish());
        }
        assert_eq!(ring.len(), 2);
        let recent = ring.recent(10);
        assert_eq!(recent.len(), 2);
        // Newest first.
        assert_eq!(recent[0].s, 2);
        assert_eq!(recent[1].s, 1);
    }

    #[test]
    fn stage_labels_are_unique() {
        let mut labels: Vec<_> = Stage::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Stage::ALL.len());
    }
}
