//! Metrics exposition: a plain-data snapshot model plus a Prometheus
//! text-format renderer.
//!
//! The snapshot is deliberately serde-free (this crate has zero deps); the
//! serving layer mirrors it into wire types for the JSON `metrics` verb and
//! calls [`render_prometheus`] for `--format prom`.

use crate::hist::HistogramSnapshot;

/// One label pair: static key, owned value.
pub type Label = (&'static str, String);

#[derive(Debug, Clone)]
pub struct CounterSample {
    pub name: &'static str,
    pub labels: Vec<Label>,
    pub value: u64,
}

#[derive(Debug, Clone)]
pub struct GaugeSample {
    pub name: &'static str,
    pub labels: Vec<Label>,
    pub value: u64,
}

#[derive(Debug, Clone)]
pub struct HistogramSample {
    pub name: &'static str,
    pub labels: Vec<Label>,
    pub count: u64,
    pub sum: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub p999: u64,
    /// Cumulative `(le, count)` pairs over non-empty buckets.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSample {
    pub fn from_snapshot(name: &'static str, labels: Vec<Label>, snap: &HistogramSnapshot) -> Self {
        HistogramSample {
            name,
            labels,
            count: snap.count,
            sum: snap.sum,
            p50: snap.quantile(0.50),
            p90: snap.quantile(0.90),
            p99: snap.quantile(0.99),
            p999: snap.quantile(0.999),
            buckets: snap.cumulative_buckets(),
        }
    }
}

/// Everything the `metrics` verb exposes, in one plain-data bundle.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<CounterSample>,
    pub gauges: Vec<GaugeSample>,
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    pub fn counter(&mut self, name: &'static str, labels: Vec<Label>, value: u64) {
        self.counters.push(CounterSample {
            name,
            labels,
            value,
        });
    }

    pub fn gauge(&mut self, name: &'static str, labels: Vec<Label>, value: u64) {
        self.gauges.push(GaugeSample {
            name,
            labels,
            value,
        });
    }

    pub fn histogram(&mut self, name: &'static str, labels: Vec<Label>, snap: &HistogramSnapshot) {
        self.histograms
            .push(HistogramSample::from_snapshot(name, labels, snap));
    }

    /// Value of the first counter with this name (labels summed), handy in
    /// tests and smoke checks.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn format_labels(labels: &[Label], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", k, escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{}=\"{}\"", k, v));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Render the snapshot in the Prometheus text exposition format: `# TYPE`
/// headers per metric family, one sample line per label set, histograms as
/// cumulative `_bucket{le=...}` series plus `_sum`/`_count`.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut typed: Vec<&'static str> = Vec::new();
    let mut type_header = |out: &mut String, name: &'static str, kind: &str| {
        if !typed.contains(&name) {
            typed.push(name);
            out.push_str(&format!("# TYPE {} {}\n", name, kind));
        }
    };

    for c in &snap.counters {
        type_header(&mut out, c.name, "counter");
        out.push_str(&format!(
            "{}{} {}\n",
            c.name,
            format_labels(&c.labels, None),
            c.value
        ));
    }
    for g in &snap.gauges {
        type_header(&mut out, g.name, "gauge");
        out.push_str(&format!(
            "{}{} {}\n",
            g.name,
            format_labels(&g.labels, None),
            g.value
        ));
    }
    for h in &snap.histograms {
        type_header(&mut out, h.name, "histogram");
        let bucket_name = format!("{}_bucket", h.name);
        for (le, cum) in &h.buckets {
            out.push_str(&format!(
                "{}{} {}\n",
                bucket_name,
                format_labels(&h.labels, Some(("le", &le.to_string()))),
                cum
            ));
        }
        out.push_str(&format!(
            "{}{} {}\n",
            bucket_name,
            format_labels(&h.labels, Some(("le", "+Inf"))),
            h.count
        ));
        out.push_str(&format!(
            "{}_sum{} {}\n",
            h.name,
            format_labels(&h.labels, None),
            h.sum
        ));
        out.push_str(&format!(
            "{}_count{} {}\n",
            h.name,
            format_labels(&h.labels, None),
            h.count
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut m = MetricsSnapshot::default();
        m.counter(
            "relcomp_queries_total",
            vec![("workload", "st".into()), ("outcome", "miss".into())],
            7,
        );
        m.counter(
            "relcomp_queries_total",
            vec![("workload", "st".into()), ("outcome", "hit".into())],
            3,
        );
        m.gauge("relcomp_inflight", vec![], 1);
        let h = Histogram::new();
        h.record(10);
        h.record(900);
        m.histogram(
            "relcomp_query_latency_micros",
            vec![("workload", "st".into())],
            &h.snapshot(),
        );
        m
    }

    #[test]
    fn counter_total_sums_label_sets() {
        assert_eq!(sample_snapshot().counter_total("relcomp_queries_total"), 10);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let text = render_prometheus(&sample_snapshot());
        assert!(text.contains("# TYPE relcomp_queries_total counter"));
        // TYPE header appears once even with two label sets.
        assert_eq!(text.matches("# TYPE relcomp_queries_total").count(), 1);
        assert!(text.contains("relcomp_queries_total{workload=\"st\",outcome=\"miss\"} 7"));
        assert!(text.contains("relcomp_inflight 1"));
        assert!(text.contains("# TYPE relcomp_query_latency_micros histogram"));
        assert!(text.contains("relcomp_query_latency_micros_bucket{workload=\"st\",le=\"+Inf\"} 2"));
        assert!(text.contains("relcomp_query_latency_micros_sum{workload=\"st\"} 910"));
        assert!(text.contains("relcomp_query_latency_micros_count{workload=\"st\"} 2"));
        // Cumulative le buckets: 10 -> le=15 cum 1, 900 -> le=1023 cum 2.
        assert!(text.contains("le=\"15\"} 1"));
        assert!(text.contains("le=\"1023\"} 2"));
        // Every non-comment line is `name_or_name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!series.is_empty());
            assert!(value.parse::<f64>().is_ok(), "bad value in {:?}", line);
        }
    }

    #[test]
    fn label_values_are_escaped() {
        let mut m = MetricsSnapshot::default();
        m.counter("x_total", vec![("estimator", "a\"b\\c".into())], 1);
        let text = render_prometheus(&m);
        assert!(text.contains("x_total{estimator=\"a\\\"b\\\\c\"} 1"));
    }
}
