//! `relcomp-obs` — zero-dependency observability primitives for the relcomp
//! workspace.
//!
//! Three layers, all std-only:
//!
//! - [`hist`] / [`registry`]: lock-free atomic counters over closed label
//!   dimensions (workload × outcome, estimator) and constant-memory
//!   log2-bucketed latency histograms with exact counts and mergeable
//!   per-shard aggregation.
//! - [`trace`]: RAII [`trace::Span`]s recording per-query stage breakdowns
//!   (parse → admission → cache lookup → plan → sample → convergence-check →
//!   serialize) into a bounded ring of recent [`trace::QueryTrace`]s.
//! - [`sampler`]: process-global sampling-rate probes (packed-vs-scalar world
//!   counts, adaptive-session batches/stop reasons, time inside the
//!   convergence rule), fed by `relcomp_core`.
//!
//! [`expo`] turns any of it into a [`expo::MetricsSnapshot`] and renders the
//! Prometheus text format. This crate deliberately has no serde dependency;
//! wire serialization lives in `relcomp-serve`.

pub mod expo;
pub mod hist;
pub mod registry;
pub mod sampler;
pub mod trace;

pub use expo::{render_prometheus, CounterSample, GaugeSample, HistogramSample, MetricsSnapshot};
pub use hist::{bucket_index, bucket_upper_bound, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{Outcome, Registry, Workload, ESTIMATOR_LABELS};
pub use sampler::{
    note_packed_samples, note_scalar_samples, note_session, sample_counts, sampler_snapshot,
    SamplerSnapshot, SessionObservation, STOP_REASON_LABELS,
};
pub use trace::{QueryTrace, Span, Stage, StageTiming, TraceBuilder, TraceRing, TRACE_RING_CAP};
