//! Log2-bucketed latency histogram with lock-free recording.
//!
//! Bucket `i` covers the half-open value range `[2^i, 2^(i+1))`; zero lands
//! in bucket 0 alongside `1`. With [`BUCKETS`] = 32 buckets the histogram
//! resolves values up to `2^31` (values beyond clamp into the last bucket),
//! which for microsecond latencies is ~35 minutes — far past any sane query.
//! Memory is constant (32 atomics + count + sum) regardless of sample count,
//! and [`Histogram::merge_from`] adds bucket-wise, so per-shard histograms
//! aggregate exactly (merge is associative and commutative by construction).
//!
//! Quantile estimates are *upper bounds*: [`Histogram::quantile`] returns the
//! inclusive upper edge of the bucket holding the requested rank, so the
//! estimate is always within one log2 bucket of the exact order statistic.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets. Values `>= 2^(BUCKETS-1)` clamp into the last.
pub const BUCKETS: usize = 32;

/// Bucket index for a value: `floor(log2(v))` clamped to the bucket range,
/// with 0 mapping to bucket 0.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        return 0;
    }
    ((63 - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper edge of bucket `i` (`2^(i+1) - 1`); the last bucket is
/// unbounded and reports `u64::MAX`.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// Fixed-memory log2 histogram. All mutation is relaxed-atomic: `record` is
/// wait-free and safe to call from any thread without external locking.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Add every bucket of `other` into `self`. Because merging is plain
    /// bucket-wise addition it is associative and commutative, so per-shard
    /// histograms can be folded in any order with identical results.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Quantile estimate for `q` in `[0, 1]`: the upper edge of the bucket
    /// containing the `ceil(q * count)`-th smallest observation. Returns 0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let snap = self.snapshot();
        snap.quantile(q)
    }

    /// Consistent-enough point-in-time copy (buckets are read one by one, so
    /// a concurrent `record` may straddle the read; counts never go backward).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a histogram, used for quantile math and exposition.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    pub buckets: [u64; BUCKETS],
    pub count: u64,
    pub sum: u64,
}

impl HistogramSnapshot {
    pub fn quantile(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(BUCKETS - 1)
    }

    /// Cumulative `(upper_bound, count <= upper_bound)` pairs for every
    /// non-empty prefix of buckets, in Prometheus `le` style.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if n != 0 {
                out.push((bucket_upper_bound(i), cum));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_share_bucket_zero() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn upper_bounds_cover_their_bucket() {
        for i in 0..BUCKETS - 1 {
            let ub = bucket_upper_bound(i);
            assert_eq!(bucket_index(ub), i);
            assert_eq!(bucket_index(ub + 1), i + 1);
        }
        assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn record_and_quantile() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        // p50 rank = 3 -> value 3 lives in bucket [2,4), upper bound 3.
        assert_eq!(h.quantile(0.5), 3);
        // p99 rank = 5 -> 1000 lives in [512,1024), upper bound 1023.
        assert_eq!(h.quantile(0.99), 1023);
        assert_eq!(h.quantile(0.0), 1);
    }

    #[test]
    fn empty_quantile_is_zero() {
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        b.record(5);
        b.record(4096);
        a.merge_from(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 5 + 5 + 4096);
        let snap = a.snapshot();
        assert_eq!(snap.buckets[bucket_index(5)], 2);
        assert_eq!(snap.buckets[bucket_index(4096)], 1);
    }

    #[test]
    fn cumulative_buckets_are_monotone() {
        let h = Histogram::new();
        for v in [1u64, 7, 7, 300, 90000] {
            h.record(v);
        }
        let cum = h.snapshot().cumulative_buckets();
        assert!(cum.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(cum.last().unwrap().1, 5);
    }
}
