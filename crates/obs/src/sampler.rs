//! Process-global sampling-rate probes.
//!
//! Sampling happens deep inside `relcomp_core` on engine threads and worker
//! pools alike, so these counters are process-wide statics rather than
//! per-engine registry state: one source of truth for the packed-vs-scalar
//! sample split (formerly ad-hoc atomics in `relcomp_core::packed`) and for
//! adaptive-session accounting (sessions by stop reason, batches to
//! convergence, time spent sampling vs evaluating the stopping rule).

use std::sync::atomic::{AtomicU64, Ordering};

/// Stop-reason labels as emitted by `StopReason::label()` in core; sessions
/// with an unrecognized label fall into the trailing `"other"` slot.
pub const STOP_REASON_LABELS: [&str; 5] =
    ["fixed_k", "converged", "max_samples", "time_limit", "other"];

static PACKED_SAMPLES: AtomicU64 = AtomicU64::new(0);
static SCALAR_SAMPLES: AtomicU64 = AtomicU64::new(0);
static SESSIONS: [AtomicU64; STOP_REASON_LABELS.len()] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];
static SESSION_BATCHES: AtomicU64 = AtomicU64::new(0);
static SESSION_SAMPLES: AtomicU64 = AtomicU64::new(0);
static SESSION_MICROS: AtomicU64 = AtomicU64::new(0);
static CONVERGENCE_NANOS: AtomicU64 = AtomicU64::new(0);

/// Record `n` worlds sampled through the packed 64-world kernel.
#[inline]
pub fn note_packed_samples(n: u64) {
    PACKED_SAMPLES.fetch_add(n, Ordering::Relaxed);
}

/// Record `n` worlds sampled through the scalar path.
#[inline]
pub fn note_scalar_samples(n: u64) {
    SCALAR_SAMPLES.fetch_add(n, Ordering::Relaxed);
}

/// `(packed, scalar)` lifetime sample counts.
pub fn sample_counts() -> (u64, u64) {
    (
        PACKED_SAMPLES.load(Ordering::Relaxed),
        SCALAR_SAMPLES.load(Ordering::Relaxed),
    )
}

/// One finished estimation session, as reported by core's `finish_estimate`.
#[derive(Debug, Clone, Copy)]
pub struct SessionObservation {
    /// Worlds sampled by the session.
    pub samples: u64,
    /// Sampling batches taken before stopping.
    pub batches: u64,
    /// Session wall time in microseconds.
    pub micros: u64,
    /// Nanoseconds spent inside the convergence stopping rule.
    pub convergence_nanos: u64,
    /// `StopReason::label()` of the reason the session ended.
    pub stop_reason: &'static str,
}

/// Fold one finished session into the global probes.
pub fn note_session(obs: &SessionObservation) {
    let idx = STOP_REASON_LABELS
        .iter()
        .position(|l| *l == obs.stop_reason)
        .unwrap_or(STOP_REASON_LABELS.len() - 1);
    SESSIONS[idx].fetch_add(1, Ordering::Relaxed);
    SESSION_BATCHES.fetch_add(obs.batches, Ordering::Relaxed);
    SESSION_SAMPLES.fetch_add(obs.samples, Ordering::Relaxed);
    SESSION_MICROS.fetch_add(obs.micros, Ordering::Relaxed);
    CONVERGENCE_NANOS.fetch_add(obs.convergence_nanos, Ordering::Relaxed);
}

/// Point-in-time copy of every sampler probe.
#[derive(Debug, Clone)]
pub struct SamplerSnapshot {
    pub packed_samples: u64,
    pub scalar_samples: u64,
    /// `(stop_reason label, sessions)` in [`STOP_REASON_LABELS`] order.
    pub sessions: Vec<(&'static str, u64)>,
    pub session_batches: u64,
    pub session_samples: u64,
    pub session_micros: u64,
    pub convergence_nanos: u64,
}

impl SamplerSnapshot {
    pub fn sessions_total(&self) -> u64 {
        self.sessions.iter().map(|(_, n)| n).sum()
    }

    /// Lifetime average sampling rate over all sessions, in samples/sec.
    pub fn samples_per_sec(&self) -> f64 {
        if self.session_micros == 0 {
            return 0.0;
        }
        self.session_samples as f64 / (self.session_micros as f64 / 1e6)
    }
}

pub fn sampler_snapshot() -> SamplerSnapshot {
    SamplerSnapshot {
        packed_samples: PACKED_SAMPLES.load(Ordering::Relaxed),
        scalar_samples: SCALAR_SAMPLES.load(Ordering::Relaxed),
        sessions: STOP_REASON_LABELS
            .iter()
            .zip(SESSIONS.iter())
            .map(|(l, n)| (*l, n.load(Ordering::Relaxed)))
            .collect(),
        session_batches: SESSION_BATCHES.load(Ordering::Relaxed),
        session_samples: SESSION_SAMPLES.load(Ordering::Relaxed),
        session_micros: SESSION_MICROS.load(Ordering::Relaxed),
        convergence_nanos: CONVERGENCE_NANOS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // All tests share process-global state, so assert on deltas only.
    #[test]
    fn sample_counts_accumulate() {
        let (p0, s0) = sample_counts();
        note_packed_samples(64);
        note_scalar_samples(3);
        let (p1, s1) = sample_counts();
        assert!(p1 >= p0 + 64);
        assert!(s1 >= s0 + 3);
    }

    #[test]
    fn sessions_fold_by_stop_reason() {
        let before = sampler_snapshot();
        note_session(&SessionObservation {
            samples: 1000,
            batches: 4,
            micros: 2000,
            convergence_nanos: 500,
            stop_reason: "converged",
        });
        note_session(&SessionObservation {
            samples: 10,
            batches: 1,
            micros: 5,
            convergence_nanos: 0,
            stop_reason: "definitely-not-a-reason",
        });
        let after = sampler_snapshot();
        assert_eq!(after.sessions_total(), before.sessions_total() + 2);
        let count = |snap: &SamplerSnapshot, label: &str| {
            snap.sessions
                .iter()
                .find(|(l, _)| *l == label)
                .map(|(_, n)| *n)
                .unwrap()
        };
        assert_eq!(count(&after, "converged"), count(&before, "converged") + 1);
        assert_eq!(count(&after, "other"), count(&before, "other") + 1);
        assert!(after.session_samples >= before.session_samples + 1010);
        assert!(after.session_batches >= before.session_batches + 5);
        assert!(after.convergence_nanos >= before.convergence_nanos + 500);
        assert!(after.samples_per_sec() > 0.0);
    }
}
