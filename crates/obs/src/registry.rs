//! Per-engine metrics registry: lock-free counters over static label
//! dimensions plus one latency histogram per workload.
//!
//! Label dimensions are closed enums so every counter is a plain array slot —
//! no hashing, no allocation, no locks on the hot path. The registry is
//! per-engine state (an engine's counters must not bleed into another
//! engine's `stats`); process-global sampler counters live in
//! [`crate::sampler`] instead.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::hist::{Histogram, HistogramSnapshot};
use crate::trace::TraceRing;

/// Served workload class, the primary label dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Single-pair s-t reliability.
    St,
    /// Top-k most reliable targets from a source.
    TopK,
    /// Distance-constrained reliability R_d.
    Distance,
    /// Greedy reliability maximization (edge-upgrade search).
    Maximize,
}

impl Workload {
    pub const ALL: [Workload; 4] = [
        Workload::St,
        Workload::TopK,
        Workload::Distance,
        Workload::Maximize,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Workload::St => "st",
            Workload::TopK => "topk",
            Workload::Distance => "dquery",
            Workload::Maximize => "maximize",
        }
    }

    #[inline]
    fn idx(self) -> usize {
        match self {
            Workload::St => 0,
            Workload::TopK => 1,
            Workload::Distance => 2,
            Workload::Maximize => 3,
        }
    }
}

/// How a query concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Answered from the result cache.
    Hit,
    /// Answered by running an estimator.
    Miss,
    /// Refused by admission control or budget validation.
    Rejected,
    /// Failed for any other reason (unknown node, bad plan, ...).
    Error,
}

impl Outcome {
    pub const ALL: [Outcome; 4] = [
        Outcome::Hit,
        Outcome::Miss,
        Outcome::Rejected,
        Outcome::Error,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Outcome::Hit => "hit",
            Outcome::Miss => "miss",
            Outcome::Rejected => "rejected",
            Outcome::Error => "error",
        }
    }

    #[inline]
    fn idx(self) -> usize {
        match self {
            Outcome::Hit => 0,
            Outcome::Miss => 1,
            Outcome::Rejected => 2,
            Outcome::Error => 3,
        }
    }
}

/// Closed set of estimator display names used as the `estimator` label.
/// Anything outside this list (future estimators wired in without updating
/// obs) falls into the trailing `"other"` slot rather than being dropped.
pub const ESTIMATOR_LABELS: [&str; 11] = [
    "MC",
    "BFS Sharing",
    "ProbTree",
    "LP+",
    "LP",
    "RHH",
    "RSS",
    "ProbTree+LP+",
    "ProbTree+RHH",
    "ProbTree+RSS",
    "other",
];

#[inline]
fn estimator_idx(label: &str) -> usize {
    ESTIMATOR_LABELS
        .iter()
        .position(|l| *l == label)
        .unwrap_or(ESTIMATOR_LABELS.len() - 1)
}

/// Per-engine registry. Construct one per [`QueryEngine`]-like owner; call
/// [`Registry::observe_query`] from the single place that finishes queries.
#[derive(Debug, Default)]
pub struct Registry {
    /// `queries[workload][outcome]`.
    queries: [[AtomicU64; 4]; 4],
    /// Completed (hit or miss) queries per estimator display name.
    by_estimator: [AtomicU64; ESTIMATOR_LABELS.len()],
    /// End-to-end latency in microseconds, per workload.
    latency: [Histogram; 4],
    updates: AtomicU64,
    /// Ring buffer of recent per-query stage traces.
    pub traces: TraceRing,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a completed query: outcome counter, estimator counter, and the
    /// workload latency histogram in one call.
    pub fn observe_query(
        &self,
        workload: Workload,
        outcome: Outcome,
        estimator: &str,
        micros: u64,
    ) {
        self.bump(workload, outcome);
        self.by_estimator[estimator_idx(estimator)].fetch_add(1, Ordering::Relaxed);
        self.latency[workload.idx()].record(micros);
    }

    /// Record a query refused before any estimator ran.
    pub fn record_rejected(&self, workload: Workload) {
        self.bump(workload, Outcome::Rejected);
    }

    /// Record a query that failed for a non-admission reason.
    pub fn record_error(&self, workload: Workload) {
        self.bump(workload, Outcome::Error);
    }

    pub fn note_update(&self) {
        self.updates.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn bump(&self, workload: Workload, outcome: Outcome) {
        self.queries[workload.idx()][outcome.idx()].fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self, workload: Workload, outcome: Outcome) -> u64 {
        self.queries[workload.idx()][outcome.idx()].load(Ordering::Relaxed)
    }

    /// Queries answered (hit + miss) across all workloads — the historical
    /// `stats.queries` counter.
    pub fn queries_total(&self) -> u64 {
        Workload::ALL
            .iter()
            .map(|&w| self.count(w, Outcome::Hit) + self.count(w, Outcome::Miss))
            .sum()
    }

    pub fn rejected_total(&self) -> u64 {
        Workload::ALL
            .iter()
            .map(|&w| self.count(w, Outcome::Rejected))
            .sum()
    }

    pub fn errors_total(&self) -> u64 {
        Workload::ALL
            .iter()
            .map(|&w| self.count(w, Outcome::Error))
            .sum()
    }

    pub fn updates(&self) -> u64 {
        self.updates.load(Ordering::Relaxed)
    }

    pub fn estimator_count(&self, label: &str) -> u64 {
        self.by_estimator[estimator_idx(label)].load(Ordering::Relaxed)
    }

    pub fn latency(&self, workload: Workload) -> &Histogram {
        &self.latency[workload.idx()]
    }

    /// Latency across all workloads, built by merging the per-workload
    /// histograms (exercising the mergeable-histogram contract).
    pub fn merged_latency(&self) -> HistogramSnapshot {
        let merged = Histogram::new();
        for w in Workload::ALL {
            merged.merge_from(self.latency(w));
        }
        merged.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_routes_to_labels() {
        let r = Registry::new();
        r.observe_query(Workload::St, Outcome::Miss, "ProbTree", 120);
        r.observe_query(Workload::St, Outcome::Hit, "ProbTree", 4);
        r.observe_query(Workload::TopK, Outcome::Miss, "MC", 5000);
        r.record_rejected(Workload::St);
        r.record_error(Workload::Distance);

        assert_eq!(r.queries_total(), 3);
        assert_eq!(r.rejected_total(), 1);
        assert_eq!(r.errors_total(), 1);
        assert_eq!(r.count(Workload::St, Outcome::Hit), 1);
        assert_eq!(r.count(Workload::St, Outcome::Miss), 1);
        assert_eq!(r.count(Workload::TopK, Outcome::Miss), 1);
        assert_eq!(r.estimator_count("ProbTree"), 2);
        assert_eq!(r.estimator_count("MC"), 1);
        assert_eq!(r.latency(Workload::St).count(), 2);
        assert_eq!(r.latency(Workload::TopK).count(), 1);
        assert_eq!(r.latency(Workload::Distance).count(), 0);
    }

    #[test]
    fn unknown_estimator_lands_in_other() {
        let r = Registry::new();
        r.observe_query(Workload::St, Outcome::Miss, "Quantum", 1);
        assert_eq!(r.estimator_count("other"), 1);
    }

    #[test]
    fn merged_latency_sums_workloads() {
        let r = Registry::new();
        r.observe_query(Workload::St, Outcome::Miss, "MC", 10);
        r.observe_query(Workload::TopK, Outcome::Miss, "MC", 10);
        r.observe_query(Workload::Distance, Outcome::Miss, "MC", 1_000_000);
        let merged = r.merged_latency();
        assert_eq!(merged.count, 3);
        assert_eq!(merged.sum, 1_000_020);
    }
}
