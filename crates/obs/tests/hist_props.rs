//! Property tests for the log2 histogram: merge is associative and
//! commutative, and quantile estimates stay within one bucket of the exact
//! sorted-sample quantile.

use proptest::prelude::*;
use relcomp_obs::hist::{bucket_index, Histogram, BUCKETS};

fn fill(values: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

fn buckets_of(h: &Histogram) -> ([u64; BUCKETS], u64, u64) {
    let s = h.snapshot();
    (s.buckets, s.count, s.sum)
}

/// Exact order statistic matching the histogram's rank convention:
/// the `ceil(q * n)`-th smallest sample (1-indexed).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

fn values() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..2_000_000, 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// merge(a, merge(b, c)) == merge(merge(a, b), c), bucket-for-bucket.
    #[test]
    fn merge_is_associative(a in values(), b in values(), c in values()) {
        let left = fill(&a);
        let bc = fill(&b);
        bc.merge_from(&fill(&c));
        left.merge_from(&bc);

        let right = fill(&a);
        right.merge_from(&fill(&b));
        right.merge_from(&fill(&c));

        prop_assert_eq!(buckets_of(&left), buckets_of(&right));
    }

    /// merge(a, b) == merge(b, a), bucket-for-bucket.
    #[test]
    fn merge_is_commutative(a in values(), b in values()) {
        let ab = fill(&a);
        ab.merge_from(&fill(&b));
        let ba = fill(&b);
        ba.merge_from(&fill(&a));
        prop_assert_eq!(buckets_of(&ab), buckets_of(&ba));
    }

    /// A quantile estimate lands in the same log2 bucket as the exact
    /// order statistic (the estimate is that bucket's upper bound).
    #[test]
    fn quantile_within_one_bucket_of_exact(vals in values(), q in 0.0f64..1.0) {
        let h = fill(&vals);
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, q);
        let est = h.quantile(q);
        prop_assert_eq!(
            bucket_index(est),
            bucket_index(exact),
            "estimate {} vs exact {} for q={}",
            est,
            exact,
            q
        );
        prop_assert!(est >= exact);
    }

    /// Merging never loses observations: counts and sums add exactly.
    #[test]
    fn merge_preserves_count_and_sum(a in values(), b in values()) {
        let h = fill(&a);
        h.merge_from(&fill(&b));
        prop_assert_eq!(h.count(), (a.len() + b.len()) as u64);
        let want: u64 = a.iter().chain(b.iter()).sum();
        prop_assert_eq!(h.sum(), want);
    }
}
