//! # relcomp — s-t reliability estimation over uncertain graphs
//!
//! Umbrella crate for the Rust reproduction of *"An In-Depth Comparison of
//! s-t Reliability Algorithms over Uncertain Graphs"* (VLDB 2019):
//!
//! * [`ugraph`] — the uncertain-graph substrate (CSR storage,
//!   possible-world semantics, generators, dataset analogs);
//! * [`core`] — the six estimators (MC, BFS Sharing, RHH, RSS, LP/LP+,
//!   ProbTree) behind one [`Estimator`] trait;
//! * [`eval`] — the paper's evaluation harness (workloads, convergence
//!   protocol, metrics, experiments, recommendations);
//! * [`serve`] — the long-lived query service (parallel sampling engine,
//!   result cache, line-delimited JSON protocol over TCP).
//!
//! ## Quickstart
//!
//! ```
//! use relcomp::prelude::*;
//! use std::sync::Arc;
//!
//! // A 3-node chain where each hop exists with probability 0.8.
//! let mut b = GraphBuilder::new(3);
//! b.add_edge(NodeId(0), NodeId(1), 0.8).unwrap();
//! b.add_edge(NodeId(1), NodeId(2), 0.8).unwrap();
//! let graph = Arc::new(b.build());
//!
//! let mut estimator = McSampling::new(Arc::clone(&graph));
//! let mut rng = rand::thread_rng();
//! let estimate = estimator.estimate(NodeId(0), NodeId(2), 5_000, &mut rng);
//! assert!((estimate.reliability - 0.64).abs() < 0.05);
//! ```

#![warn(missing_docs)]

pub use relcomp_core as core;
pub use relcomp_eval as eval;
pub use relcomp_serve as serve;
pub use relcomp_ugraph as ugraph;

pub use relcomp_core::{Estimate, Estimator, EstimatorKind, SuiteParams};
pub use relcomp_ugraph::{Dataset, GraphBuilder, NodeId, Probability, UncertainGraph};

/// Everything a typical user needs in scope.
pub mod prelude {
    pub use relcomp_core::bfs_sharing::BfsSharing;
    pub use relcomp_core::lazy::LazyPropagation;
    pub use relcomp_core::mc::McSampling;
    pub use relcomp_core::parallel::ParallelSampler;
    pub use relcomp_core::probtree::ProbTree;
    pub use relcomp_core::recursive::{RecursiveSampling, RecursiveStratified};
    pub use relcomp_core::{
        build_estimator, Convergence, Estimate, EstimationSession, Estimator, EstimatorKind,
        SampleBudget, StopReason, SuiteParams,
    };
    pub use relcomp_eval::{ConvergenceConfig, ExperimentEnv, RunProfile, Workload};
    pub use relcomp_serve::{Client, EngineConfig, QueryEngine, QueryRequest, Server};
    pub use relcomp_ugraph::{Dataset, GraphBuilder, NodeId, Probability, UncertainGraph};
}
