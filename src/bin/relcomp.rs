//! `relcomp` — command-line interface to the library.
//!
//! ```text
//! relcomp generate <dataset> --out FILE [--scale S] [--seed N]
//! relcomp generate-stream ba|er --out FILE --nodes N [--attach M] [--pairs M]
//!                 [--seed N] [--prob-low X] [--prob-high Y]
//! relcomp convert <in> <out>
//! relcomp stats <file>
//! relcomp query <file> <s> <t> [--estimator NAME] [--samples N] [--seed N]
//!                 [--eps E] [--confidence C] [--time-budget-ms MS]
//! relcomp bounds <file> <s> <t>
//! relcomp path <file> <s> <t>
//! relcomp topk <file> <s> [--k N] [--samples N] [--seed N] [--threads N]
//!                [--eps E] [--confidence C] [--time-budget-ms MS]
//! relcomp dquery <file> <s> <t> <d> [--samples N] [--seed N] [--threads N]
//!                [--eps E] [--confidence C] [--time-budget-ms MS]
//! relcomp maximize <file> <s> <t> [--k N] [--boost P] [--candidates N]
//!                [--samples N] [--seed N] [--threads N]
//!                [--eps E] [--confidence C] [--time-budget-ms MS]
//! relcomp recommend --memory smaller|larger --variance lower|slight|higher --speed faster|slower
//! relcomp serve <file> [--port P] [--threads N] [--cache N] [--seed N]
//! relcomp client <s> <t> [--addr HOST:PORT] [--estimator NAME] [--samples N] [--seed N]
//!                  [--eps E] [--confidence C] [--time-budget-ms MS]
//! relcomp client topk <s> [--k N] [--addr HOST:PORT] [--samples N] [--seed N]
//!                  [--eps E] [--confidence C] [--time-budget-ms MS]
//! relcomp client dquery <s> <t> <d> [--addr HOST:PORT] [--samples N] [--seed N]
//!                  [--eps E] [--confidence C] [--time-budget-ms MS]
//! relcomp client maximize <s> <t> [--k N] [--boost P] [--candidates N] [--apply]
//!                  [--addr HOST:PORT] [--samples N] [--seed N]
//!                  [--eps E] [--confidence C] [--time-budget-ms MS]
//! relcomp client update <s> <t> <prob> [--addr HOST:PORT]
//! relcomp client reload [--path FILE] [--addr HOST:PORT]
//! relcomp client metrics [--format json|prom] [--addr HOST:PORT]
//! relcomp client trace [--last N] [--addr HOST:PORT]
//! relcomp client stats|ping|shutdown [--addr HOST:PORT]
//! ```
//!
//! Graph files are loaded by sniffing their magic bytes (text, `UGRAPHB1`
//! record binary, or mmap-able `UGRAPHB2`); when writing, the extension
//! picks the format (`.ugb` = v1 binary, `.ug2` = v2 binary, else text).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use relcomp::prelude::*;
use relcomp_core::bounds::reliability_bounds;
use relcomp_core::paths::most_reliable_path;
use relcomp_eval::recommend::{recommend, MemoryBudget, SpeedNeed, VarianceNeed};
use relcomp_serve::engine::EngineConfig;
use relcomp_serve::protocol::{QueryRequest, DEFAULT_PORT};
use relcomp_serve::{
    Client, PersistConfig, Server, ServerMode, ServerOptions, TenantRegistry, DEFAULT_TENANT,
};
use relcomp_ugraph::analysis::{degree_stats, largest_component_size};
use relcomp_ugraph::generators::{StreamSpec, StreamTopology};
use relcomp_ugraph::io::{load_graph_auto, save_graph, save_graph_binary};
use relcomp_ugraph::write_graph_v2;
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage:
  relcomp generate <dataset> --out FILE [--scale S] [--seed N]
  relcomp generate-stream ba|er --out FILE --nodes N [--attach M] [--pairs M]
                  [--seed N] [--prob-low X] [--prob-high Y]
  relcomp convert <in> <out>
  relcomp stats <file>
  relcomp query <file> <s> <t> [--estimator NAME] [--samples N] [--seed N]
                  [--eps E] [--confidence C] [--time-budget-ms MS]
  relcomp bounds <file> <s> <t>
  relcomp path <file> <s> <t>
  relcomp topk <file> <s> [--k N] [--samples N] [--seed N] [--threads N]
                 [--eps E] [--confidence C] [--time-budget-ms MS]
  relcomp dquery <file> <s> <t> <d> [--samples N] [--seed N] [--threads N]
                 [--eps E] [--confidence C] [--time-budget-ms MS]
  relcomp maximize <file> <s> <t> [--k N] [--boost P] [--candidates N]
                 [--samples N] [--seed N] [--threads N]
                 [--eps E] [--confidence C] [--time-budget-ms MS]
  relcomp recommend --memory smaller|larger --variance lower|slight|higher --speed faster|slower
  relcomp serve <file> [--port P] [--threads N] [--cache N] [--seed N]
                  [--mode auto|reactor|threaded] [--workers N]
                  [--warm-cache DIR] [--flush-ms MS]
  relcomp client <s> <t> [--addr HOST:PORT] [--estimator NAME] [--samples N] [--seed N]
                   [--eps E] [--confidence C] [--time-budget-ms MS]
  relcomp client topk <s> [--k N] [--addr HOST:PORT] [--samples N] [--seed N]
                   [--eps E] [--confidence C] [--time-budget-ms MS]
  relcomp client dquery <s> <t> <d> [--addr HOST:PORT] [--samples N] [--seed N]
                   [--eps E] [--confidence C] [--time-budget-ms MS]
  relcomp client maximize <s> <t> [--k N] [--boost P] [--candidates N] [--apply]
                   [--addr HOST:PORT] [--samples N] [--seed N]
                   [--eps E] [--confidence C] [--time-budget-ms MS]
  relcomp client load <name> <path> [--quota N] [--addr HOST:PORT]
  relcomp client unload <name> [--addr HOST:PORT]
  relcomp client use <name> [--addr HOST:PORT]
  relcomp client update <s> <t> <prob> [--addr HOST:PORT]
  relcomp client reload [--path FILE] [--addr HOST:PORT]
  relcomp client metrics [--format json|prom] [--addr HOST:PORT]
  relcomp client trace [--last N] [--addr HOST:PORT]
  relcomp client stats|ping|shutdown [--addr HOST:PORT]

datasets:   lastfm nethept as_topology dblp02 dblp005 biomine
estimators: mc bfs_sharing probtree lp+ lp rhh rss probtree+lp+ probtree+rhh probtree+rss";

/// Flags that stand alone (`--apply`), not `--flag value` pairs.
const BOOLEAN_FLAGS: &[&str] = &["apply"];

/// Parse `--flag value` options out of an argument list; returns
/// (positional, options). [`BOOLEAN_FLAGS`] take no value and read as
/// `"true"`.
fn split_options(args: &[String]) -> Result<(Vec<&str>, HashMap<&str, &str>), String> {
    let mut positional = Vec::new();
    let mut options = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if let Some(name) = a.strip_prefix("--") {
            if BOOLEAN_FLAGS.contains(&name) {
                options.insert(name, "true");
                i += 1;
                continue;
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{name} requires a value"))?;
            options.insert(name, value.as_str());
            i += 2;
        } else {
            positional.push(a);
            i += 1;
        }
    }
    Ok((positional, options))
}

/// Reject options the command does not understand, naming the ones it
/// does. Typos like `--sample` or options borrowed from another command
/// fail loudly instead of being silently ignored.
fn check_options(cmd: &str, options: &HashMap<&str, &str>, allowed: &[&str]) -> Result<(), String> {
    for &name in options.keys() {
        if !allowed.contains(&name) {
            let expected = if allowed.is_empty() {
                "no options".to_string()
            } else {
                allowed
                    .iter()
                    .map(|a| format!("--{a}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            return Err(format!(
                "unknown option `--{name}` for `{cmd}` (expected {expected})"
            ));
        }
    }
    Ok(())
}

fn parse_node(graph: &UncertainGraph, raw: &str, what: &str) -> Result<NodeId, String> {
    let id: u32 = raw
        .parse()
        .map_err(|_| format!("cannot parse {what} node `{raw}`"))?;
    let node = NodeId(id);
    if !graph.contains_node(node) {
        return Err(format!(
            "{what} node {id} out of range (graph has {} nodes)",
            graph.num_nodes()
        ));
    }
    Ok(node)
}

fn parse_estimator(name: &str) -> Result<EstimatorKind, String> {
    // The core parser's error already lists every valid spelling.
    EstimatorKind::parse(name)
}

/// The shared `--samples/--eps/--confidence/--time-budget-ms` budget
/// flags, parsed and validated (shared by `query`, `topk`, `dquery`, and
/// the matching `client` forms so their budget semantics cannot drift).
#[derive(Clone, Copy, Debug, Default)]
struct BudgetFlags {
    samples: Option<usize>,
    eps: Option<f64>,
    confidence: Option<f64>,
    time_ms: Option<u64>,
}

impl BudgetFlags {
    fn parse(opts: &HashMap<&str, &str>) -> Result<Self, String> {
        let flags = BudgetFlags {
            samples: opts
                .get("samples")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| "bad --samples (expected a positive integer)")?,
            eps: opts
                .get("eps")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| "bad --eps")?,
            confidence: opts
                .get("confidence")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| "bad --confidence")?,
            time_ms: opts
                .get("time-budget-ms")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| "bad --time-budget-ms")?,
        };
        // Zero is rejected here at parse time — not deep in a sampler
        // panic, and not only after a round trip for the client forms
        // (the server rejects it too, but a usage error should never
        // need a connection to surface).
        if flags.samples == Some(0) {
            return Err("--samples must be positive".into());
        }
        // A bad value is a usage error, not a panic (the rule set is the
        // serve engine's, so the two entry points cannot drift).
        relcomp_core::session::validate_budget_fields(flags.eps, flags.confidence, flags.time_ms)
            .map_err(|e| format!("--{}", e.replacen("time_budget_ms", "time-budget-ms", 1)))?;
        Ok(flags)
    }

    fn is_adaptive(&self) -> bool {
        self.eps.is_some() || self.time_ms.is_some()
    }

    /// Resolve the sample budget: `default_fixed` when no flag names one
    /// and no adaptive knob raises the cap to the adaptive default.
    fn resolve_samples(&self, default_fixed: usize) -> Result<usize, String> {
        let k = self.samples.unwrap_or(if self.is_adaptive() {
            relcomp_core::session::DEFAULT_ADAPTIVE_CAP
        } else {
            default_fixed
        });
        if k == 0 {
            return Err("--samples must be positive".into());
        }
        Ok(k)
    }

    /// Assemble the [`SampleBudget`] for `samples` (see
    /// [`BudgetFlags::resolve_samples`]).
    fn budget(&self, samples: usize) -> SampleBudget {
        SampleBudget::assemble(
            samples,
            self.eps,
            self.confidence
                .unwrap_or(relcomp_core::session::DEFAULT_CONFIDENCE),
            self.time_ms,
        )
    }
}

/// Parse a `--quota N` flag: a per-tenant in-flight limit must be a
/// positive integer, and zero is rejected here at parse time rather
/// than after a round trip to the server (which enforces the same rule).
fn parse_quota(opts: &HashMap<&str, &str>) -> Result<Option<usize>, String> {
    let quota: Option<usize> = opts
        .get("quota")
        .map(|v| v.parse())
        .transpose()
        .map_err(|_| "bad --quota (expected a positive integer)")?;
    if quota == Some(0) {
        return Err("--quota must be positive (0 would admit no queries at all)".into());
    }
    Ok(quota)
}

/// Resolve a `--threads` flag (0 or absent = all available cores).
fn parse_threads(opts: &HashMap<&str, &str>) -> Result<usize, String> {
    let threads: usize = opts
        .get("threads")
        .map(|v| v.parse())
        .transpose()
        .map_err(|_| "bad --threads")?
        .unwrap_or(0);
    Ok(if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    })
}

/// Load a graph in any format, auto-detected from its magic bytes
/// (extension is irrelevant). v2 files come back as zero-copy mmap views
/// where the platform allows.
fn load_any(path: &str) -> Result<(UncertainGraph, relcomp_ugraph::LoadReport), String> {
    load_graph_auto(path).map_err(|e| e.to_string())
}

/// Save a graph, choosing the format by extension (`.ugb` = v1 binary,
/// `.ug2` = v2 mmap-able binary, anything else = text).
fn save_any(graph: &UncertainGraph, path: &str) -> Result<(), String> {
    if path.ends_with(".ug2") {
        write_graph_v2(graph, std::path::Path::new(path)).map_err(|e| e.to_string())
    } else if path.ends_with(".ugb") {
        save_graph_binary(graph, path).map_err(|e| e.to_string())
    } else {
        save_graph(graph, path).map_err(|e| e.to_string())
    }
}

fn parse_dataset(name: &str) -> Result<Dataset, String> {
    Dataset::ALL
        .into_iter()
        .find(|d| d.short_name() == name)
        .ok_or_else(|| format!("unknown dataset `{name}`"))
}

fn run(args: Vec<String>) -> Result<(), String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err("missing command".into());
    };
    let (pos, opts) = split_options(rest)?;
    let seed: u64 = opts
        .get("seed")
        .map(|v| v.parse())
        .transpose()
        .map_err(|_| "bad --seed")?
        .unwrap_or(42);

    match cmd.as_str() {
        "generate" => {
            check_options(cmd, &opts, &["out", "scale", "seed"])?;
            let [name] = pos[..] else {
                return Err("generate needs <dataset>".into());
            };
            let dataset = parse_dataset(name)?;
            let out = opts.get("out").ok_or("generate needs --out FILE")?;
            let scale: f64 = opts
                .get("scale")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| "bad --scale")?
                .unwrap_or(dataset.spec().default_scale);
            let graph = dataset.generate_with_scale(scale, seed);
            save_any(&graph, out)?;
            println!(
                "wrote {} ({} nodes, {} edges, scale {scale})",
                out,
                graph.num_nodes(),
                graph.num_edges()
            );
            Ok(())
        }
        "generate-stream" => {
            check_options(
                cmd,
                &opts,
                &[
                    "out",
                    "nodes",
                    "attach",
                    "pairs",
                    "seed",
                    "prob-low",
                    "prob-high",
                ],
            )?;
            let [family] = pos[..] else {
                return Err("generate-stream needs a topology: ba or er".into());
            };
            let out = opts.get("out").ok_or("generate-stream needs --out FILE")?;
            if !out.ends_with(".ug2") {
                return Err("generate-stream writes v2 binaries; --out must end in .ug2".into());
            }
            let n: usize = opts
                .get("nodes")
                .ok_or("generate-stream needs --nodes N")?
                .parse()
                .map_err(|_| "bad --nodes")?;
            let topology = match family {
                "ba" => StreamTopology::BarabasiAlbert {
                    n,
                    m_attach: opts
                        .get("attach")
                        .map(|v| v.parse())
                        .transpose()
                        .map_err(|_| "bad --attach")?
                        .unwrap_or(5),
                },
                "er" => StreamTopology::ErdosRenyi {
                    n,
                    m_pairs: opts
                        .get("pairs")
                        .map(|v| v.parse())
                        .transpose()
                        .map_err(|_| "bad --pairs")?
                        .unwrap_or(n.saturating_mul(5)),
                },
                other => return Err(format!("unknown topology `{other}` (expected ba or er)")),
            };
            let spec = StreamSpec {
                topology,
                seed,
                prob_low: opts
                    .get("prob-low")
                    .map(|v| v.parse())
                    .transpose()
                    .map_err(|_| "bad --prob-low")?
                    .unwrap_or(0.05),
                prob_high: opts
                    .get("prob-high")
                    .map(|v| v.parse())
                    .transpose()
                    .map_err(|_| "bad --prob-high")?
                    .unwrap_or(0.5),
            };
            let start = std::time::Instant::now();
            let stats =
                relcomp_ugraph::generators::generate_v2_file(&spec, std::path::Path::new(out))
                    .map_err(|e| e.to_string())?;
            println!(
                "wrote {} ({} nodes, {} directed edges, {:.1} MiB) in {:.2} s",
                out,
                stats.num_nodes,
                stats.num_edges,
                stats.file_bytes as f64 / (1024.0 * 1024.0),
                start.elapsed().as_secs_f64()
            );
            Ok(())
        }
        "convert" => {
            check_options(cmd, &opts, &[])?;
            let [input, output] = pos[..] else {
                return Err("convert needs <in> <out>".into());
            };
            let start = std::time::Instant::now();
            let (graph, report) = load_any(input)?;
            save_any(&graph, output)?;
            let out_bytes = std::fs::metadata(output).map(|m| m.len()).unwrap_or(0);
            println!(
                "converted {input} ({}) -> {output} ({} nodes, {} edges, {:.1} MiB) in {:.2} s",
                report.format,
                graph.num_nodes(),
                graph.num_edges(),
                out_bytes as f64 / (1024.0 * 1024.0),
                start.elapsed().as_secs_f64()
            );
            Ok(())
        }
        "stats" => {
            check_options(cmd, &opts, &[])?;
            let [file] = pos[..] else {
                return Err("stats needs <file>".into());
            };
            let (graph, report) = load_any(file)?;
            let props_probs: Vec<f64> = graph.edges().map(|(_, _, _, p)| p.value()).collect();
            let prob = relcomp_ugraph::stats::Summary::of(&props_probs);
            println!("nodes:  {}", graph.num_nodes());
            println!("edges:  {}", graph.num_edges());
            println!(
                "format: {} (loaded via {})",
                report.format,
                if report.mmapped { "mmap" } else { "heap" }
            );
            if let Some(p) = prob {
                println!(
                    "probability: mean {:.4} sd {:.4} quartiles {{{:.3}, {:.3}, {:.3}}}",
                    p.mean, p.sd, p.q1, p.median, p.q3
                );
            }
            let out = degree_stats(&graph, true);
            println!(
                "out-degree: mean {:.2} max {} zero-degree nodes {}",
                out.summary.mean, out.max, out.zeros
            );
            println!(
                "largest weakly connected component: {}",
                largest_component_size(&graph)
            );
            Ok(())
        }
        "query" => {
            check_options(
                cmd,
                &opts,
                &[
                    "estimator",
                    "samples",
                    "k",
                    "seed",
                    "eps",
                    "confidence",
                    "time-budget-ms",
                ],
            )?;
            let [file, s_raw, t_raw] = pos[..] else {
                return Err("query needs <file> <s> <t>".into());
            };
            let graph = Arc::new(load_any(file)?.0);
            let s = parse_node(&graph, s_raw, "source")?;
            let t = parse_node(&graph, t_raw, "target")?;
            let kind = parse_estimator(opts.get("estimator").copied().unwrap_or("probtree"))?;
            // `--samples` is the canonical spelling (matching `topk` and
            // the serve protocol); `--k` stays as a legacy alias.
            if opts.contains_key("k") {
                eprintln!("note: `query --k` is deprecated; use `--samples` instead");
            }
            let mut flags = BudgetFlags::parse(&opts)?;
            if flags.samples.is_none() {
                flags.samples = opts
                    .get("k")
                    .map(|v| v.parse())
                    .transpose()
                    .map_err(|_| "bad --samples")?;
            }
            // Fixed budget unless an adaptive knob appears; `--samples`
            // is then the cap rather than the exact count.
            let k = flags.resolve_samples(1000)?;
            let budget = flags.budget(k);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let params = SuiteParams {
                // Fixed budgets need an index covering exactly K worlds,
                // and an explicit --samples cap is honored as given. Only
                // the *implicit* adaptive cap is trimmed: the 50k-world
                // default would materialize gigabytes of index on a large
                // graph for a query that may stop after a few hundred.
                bfs_sharing_worlds: if flags.is_adaptive() && flags.samples.is_none() {
                    k.clamp(1, 10_000)
                } else {
                    k.max(1)
                },
                ..Default::default()
            };
            let mut est = build_estimator(kind, Arc::clone(&graph), params, &mut rng);
            let result = est.estimate_with(s, t, &budget, &mut rng);
            let ci = result
                .half_width
                .map(|hw| format!(" ± {hw:.6}"))
                .unwrap_or_default();
            let stop = if result.stop_reason == StopReason::FixedK {
                String::new()
            } else {
                format!("; {}", result.stop_reason.label())
            };
            println!(
                "R({s}, {t}) ≈ {:.6}{ci}   [{}; K = {}{stop}; {:.2} ms]",
                result.reliability,
                est.name(),
                result.samples,
                result.elapsed.as_secs_f64() * 1e3
            );
            Ok(())
        }
        "bounds" => {
            check_options(cmd, &opts, &[])?;
            let [file, s_raw, t_raw] = pos[..] else {
                return Err("bounds needs <file> <s> <t>".into());
            };
            let (graph, _) = load_any(file)?;
            let s = parse_node(&graph, s_raw, "source")?;
            let t = parse_node(&graph, t_raw, "target")?;
            let b = reliability_bounds(&graph, s, t, 8);
            println!(
                "{:.6} <= R({s}, {t}) <= {:.6}   (width {:.6})",
                b.lower,
                b.upper,
                b.width()
            );
            Ok(())
        }
        "path" => {
            check_options(cmd, &opts, &[])?;
            let [file, s_raw, t_raw] = pos[..] else {
                return Err("path needs <file> <s> <t>".into());
            };
            let (graph, _) = load_any(file)?;
            let s = parse_node(&graph, s_raw, "source")?;
            let t = parse_node(&graph, t_raw, "target")?;
            match most_reliable_path(&graph, s, t) {
                Some(p) => {
                    let route: Vec<String> = p.nodes.iter().map(|n| n.to_string()).collect();
                    println!(
                        "most reliable path: {}   probability {:.6}",
                        route.join(" -> "),
                        p.probability
                    );
                }
                None => println!("no path from {s} to {t}"),
            }
            Ok(())
        }
        "topk" => {
            check_options(
                cmd,
                &opts,
                &[
                    "k",
                    "samples",
                    "seed",
                    "threads",
                    "eps",
                    "confidence",
                    "time-budget-ms",
                ],
            )?;
            let [file, s_raw] = pos[..] else {
                return Err("topk needs <file> <s>".into());
            };
            let graph = Arc::new(load_any(file)?.0);
            let s = parse_node(&graph, s_raw, "source")?;
            let k: usize = opts
                .get("k")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| "bad --k")?
                .unwrap_or(10);
            if k == 0 {
                return Err("--k must be positive".into());
            }
            let flags = BudgetFlags::parse(&opts)?;
            let samples = flags.resolve_samples(2000)?;
            let budget = flags.budget(samples);
            let threads = parse_threads(&opts)?;
            let sampler = ParallelSampler::new(Arc::clone(&graph), threads);
            let result = sampler.top_k_targets_with(s, k, &budget, seed);
            let stop = if result.stop_reason == StopReason::FixedK {
                String::new()
            } else {
                format!("; {}", result.stop_reason.label())
            };
            println!(
                "top-{k} most reliable targets from {s}   [K = {}{stop}; {threads} threads; {:.2} ms]",
                result.samples,
                result.elapsed.as_secs_f64() * 1e3
            );
            if let Some(hw) = result.half_width {
                println!("boundary half-width: {hw:.6}");
            }
            for ts in result.scores {
                println!(
                    "  node {:<8} R ≈ {:.4}",
                    ts.node.to_string(),
                    ts.reliability
                );
            }
            Ok(())
        }
        "dquery" => {
            check_options(
                cmd,
                &opts,
                &[
                    "samples",
                    "seed",
                    "threads",
                    "eps",
                    "confidence",
                    "time-budget-ms",
                ],
            )?;
            let [file, s_raw, t_raw, d_raw] = pos[..] else {
                return Err("dquery needs <file> <s> <t> <d>".into());
            };
            let graph = Arc::new(load_any(file)?.0);
            let s = parse_node(&graph, s_raw, "source")?;
            let t = parse_node(&graph, t_raw, "target")?;
            let d: usize = d_raw
                .parse()
                .map_err(|_| format!("cannot parse hop bound `{d_raw}`"))?;
            let flags = BudgetFlags::parse(&opts)?;
            let samples = flags.resolve_samples(1000)?;
            let budget = flags.budget(samples);
            let threads = parse_threads(&opts)?;
            let sampler = ParallelSampler::new(Arc::clone(&graph), threads);
            let result = sampler.estimate_distance_constrained_with(s, t, d, &budget, seed);
            let ci = result
                .half_width
                .map(|hw| format!(" ± {hw:.6}"))
                .unwrap_or_default();
            let stop = if result.stop_reason == StopReason::FixedK {
                String::new()
            } else {
                format!("; {}", result.stop_reason.label())
            };
            println!(
                "R_{d}({s}, {t}) ≈ {:.6}{ci}   [MC, d <= {d}; K = {}{stop}; {:.2} ms]",
                result.reliability,
                result.samples,
                result.elapsed.as_secs_f64() * 1e3
            );
            Ok(())
        }
        "maximize" => {
            check_options(
                cmd,
                &opts,
                &[
                    "k",
                    "boost",
                    "candidates",
                    "samples",
                    "seed",
                    "threads",
                    "eps",
                    "confidence",
                    "time-budget-ms",
                ],
            )?;
            let [file, s_raw, t_raw] = pos[..] else {
                return Err("maximize needs <file> <s> <t>".into());
            };
            let graph = Arc::new(load_any(file)?.0);
            let s = parse_node(&graph, s_raw, "source")?;
            let t = parse_node(&graph, t_raw, "target")?;
            let k: usize = opts
                .get("k")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| "bad --k")?
                .unwrap_or(1);
            if k == 0 {
                return Err("--k must be positive".into());
            }
            let boost: f64 = opts
                .get("boost")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| "bad --boost")?
                .unwrap_or(1.0);
            let flags = BudgetFlags::parse(&opts)?;
            let samples = flags.resolve_samples(2000)?;
            let budget = flags.budget(samples);
            let mut mopts = relcomp_core::MaximizeOptions::new(k, boost, budget);
            mopts.threads = parse_threads(&opts)?;
            mopts.seed = seed;
            if let Some(c) = opts
                .get("candidates")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| "bad --candidates")?
            {
                if c == 0 {
                    return Err("--candidates must be positive".into());
                }
                mopts.max_candidates = c;
            }
            let start = std::time::Instant::now();
            let result = relcomp_core::maximize(&graph, s, t, &mopts).map_err(|e| e.to_string())?;
            println!(
                "maximize R({s}, {t}): {:.6} -> {:.6} (gain {:+.6}) with {} upgrade(s)   \
                 [{} candidates, {} evaluations, K = {}; {:.2} ms]",
                result.base_reliability,
                result.reliability,
                result.gain,
                result.chosen.len(),
                result.candidates,
                result.evaluations,
                result.samples,
                start.elapsed().as_secs_f64() * 1e3
            );
            for c in &result.chosen {
                println!(
                    "  edge {} -> {}: p {:.4} -> {:.4} (gain {:+.6}, R ≈ {:.6})",
                    c.from, c.to, c.old_prob, c.new_prob, c.gain, c.reliability
                );
            }
            Ok(())
        }
        "recommend" => {
            check_options(cmd, &opts, &["memory", "variance", "speed"])?;
            let memory = match opts.get("memory").copied().unwrap_or("larger") {
                "smaller" => MemoryBudget::Smaller,
                "larger" => MemoryBudget::Larger,
                other => return Err(format!("bad --memory `{other}`")),
            };
            let variance = match opts.get("variance").copied().unwrap_or("higher") {
                "lower" => VarianceNeed::Lower,
                "slight" => VarianceNeed::SlightlyLower,
                "higher" => VarianceNeed::Higher,
                other => return Err(format!("bad --variance `{other}`")),
            };
            let speed = match opts.get("speed").copied().unwrap_or("faster") {
                "faster" => SpeedNeed::Faster,
                "slower" => SpeedNeed::Slower,
                other => return Err(format!("bad --speed `{other}`")),
            };
            let recs = recommend(memory, variance, speed);
            if recs.is_empty() {
                println!("no estimator satisfies those constraints (lowest variance requires ample memory)");
            } else {
                let names: Vec<&str> = recs.iter().map(|k| k.display_name()).collect();
                println!("recommended: {}", names.join(", "));
            }
            Ok(())
        }
        "serve" => {
            check_options(
                cmd,
                &opts,
                &[
                    "port",
                    "threads",
                    "cache",
                    "seed",
                    "mode",
                    "workers",
                    "warm-cache",
                    "flush-ms",
                ],
            )?;
            let [file] = pos[..] else {
                return Err("serve needs <file>".into());
            };
            let port: u16 = opts
                .get("port")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| "bad --port")?
                .unwrap_or(DEFAULT_PORT);
            let threads: usize = opts
                .get("threads")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| "bad --threads")?
                .unwrap_or(0); // 0 = all cores
            let cache_capacity: usize = opts
                .get("cache")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| "bad --cache")?
                .unwrap_or(EngineConfig::default().cache_capacity);
            let mode = opts
                .get("mode")
                .map(|v| ServerMode::parse(v))
                .transpose()?
                .unwrap_or_default();
            let workers: usize = opts
                .get("workers")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| "bad --workers")?
                .unwrap_or(0); // 0 = derive from available parallelism
            let persist = match (opts.get("warm-cache"), opts.get("flush-ms")) {
                (None, Some(_)) => {
                    return Err("--flush-ms needs --warm-cache DIR".into());
                }
                (None, None) => None,
                (Some(dir), flush_ms) => {
                    let mut cfg = PersistConfig::new(*dir);
                    if let Some(ms) = flush_ms {
                        let ms: u64 = ms.parse().map_err(|_| "bad --flush-ms")?;
                        if ms == 0 {
                            return Err("--flush-ms must be at least 1".into());
                        }
                        cfg.flush_interval = std::time::Duration::from_millis(ms);
                    }
                    Some(cfg)
                }
            };
            let config = EngineConfig {
                threads,
                cache_capacity,
                default_seed: seed,
                ..Default::default()
            };
            // The registry owns graph loading: the default tenant gets
            // the file from the command line (with a warm-cache restore
            // when persistence is on); further graphs arrive over the
            // wire via `client load`.
            let tenants = Arc::new(TenantRegistry::new(config, persist.clone()));
            let loaded = tenants.load(DEFAULT_TENANT, file, None)?;
            let threads = tenants
                .get(DEFAULT_TENANT)
                .expect("default tenant just loaded")
                .stats()
                .threads;
            let options = ServerOptions {
                mode,
                workers,
                persist,
            };
            let server = Server::bind_with(("127.0.0.1", port), Arc::clone(&tenants), options)
                .map_err(|e| e.to_string())?;
            let addr = server.local_addr().map_err(|e| e.to_string())?;
            let warm = if loaded.warm_entries > 0 {
                format!("; {} warm cache entries", loaded.warm_entries)
            } else {
                String::new()
            };
            println!(
                "serving {} ({} nodes, {} edges; loaded via {} in {:.1} ms{warm}) on {addr}: \
                 {threads} sampling threads, {cache_capacity}-entry cache, {mode:?} mode",
                file,
                loaded.nodes,
                loaded.edges,
                loaded.load_path,
                loaded.load_micros as f64 / 1e3
            );
            server.run().map_err(|e| e.to_string())
        }
        "client" => {
            // Query-shaped invocations take the full option set; the
            // control forms (ping/stats/shutdown/update/reload) each
            // understand their own narrow set, and silently dropping the
            // rest would be exactly the typo trap `check_options` exists
            // to close.
            match pos[..] {
                ["ping"] | ["stats"] | ["shutdown"] => {
                    check_options(&format!("client {}", pos[0]), &opts, &["addr"])?
                }
                ["load", ..] => check_options("client load", &opts, &["addr", "quota"])?,
                ["unload", ..] => check_options("client unload", &opts, &["addr"])?,
                ["use", ..] => check_options("client use", &opts, &["addr"])?,
                ["update", ..] => check_options("client update", &opts, &["addr"])?,
                ["reload", ..] => check_options("client reload", &opts, &["addr", "path"])?,
                ["metrics", ..] => check_options("client metrics", &opts, &["addr", "format"])?,
                ["trace", ..] => check_options("client trace", &opts, &["addr", "last"])?,
                ["topk", ..] => check_options(
                    "client topk",
                    &opts,
                    &[
                        "addr",
                        "k",
                        "samples",
                        "seed",
                        "eps",
                        "confidence",
                        "time-budget-ms",
                    ],
                )?,
                ["dquery", ..] => check_options(
                    "client dquery",
                    &opts,
                    &[
                        "addr",
                        "samples",
                        "seed",
                        "eps",
                        "confidence",
                        "time-budget-ms",
                    ],
                )?,
                ["maximize", ..] => check_options(
                    "client maximize",
                    &opts,
                    &[
                        "addr",
                        "k",
                        "boost",
                        "candidates",
                        "apply",
                        "samples",
                        "seed",
                        "eps",
                        "confidence",
                        "time-budget-ms",
                    ],
                )?,
                _ => check_options(
                    cmd,
                    &opts,
                    &[
                        "addr",
                        "estimator",
                        "samples",
                        "seed",
                        "eps",
                        "confidence",
                        "time-budget-ms",
                    ],
                )?,
            }
            let default_addr = format!("127.0.0.1:{DEFAULT_PORT}");
            let addr = opts.get("addr").copied().unwrap_or(&default_addr);
            let mut client = Client::connect(addr).map_err(|e| {
                format!("cannot connect to {addr}: {e} (is `relcomp serve` running?)")
            })?;
            match pos[..] {
                ["ping"] => {
                    client.ping().map_err(|e| e.to_string())?;
                    println!("pong from {addr}");
                    Ok(())
                }
                ["stats"] => {
                    let s = client.stats().map_err(|e| e.to_string())?;
                    println!("queries:       {}", s.queries);
                    println!(
                        "cache:         {} hits / {} misses ({:.1}% hit rate), {} entries",
                        s.cache_hits,
                        s.cache_misses,
                        s.hit_rate() * 100.0,
                        s.cache_entries
                    );
                    println!("rejected:      {}", s.rejected);
                    println!("threads:       {}", s.threads);
                    println!(
                        "graph:         {} nodes, {} edges (epoch {}, {} updates)",
                        s.nodes, s.edges, s.epoch, s.updates
                    );
                    println!(
                        "residents:     {} estimators, {:.1} KiB index memory",
                        s.resident_estimators,
                        s.resident_bytes as f64 / 1024.0
                    );
                    println!(
                        "samples:       {} packed worlds, {} scalar worlds",
                        s.packed_samples, s.scalar_samples
                    );
                    if !s.load_path.is_empty() {
                        println!(
                            "graph load:    via {} in {:.1} ms",
                            s.load_path,
                            s.load_micros as f64 / 1e3
                        );
                    }
                    println!("uptime:        {:.1} s", s.uptime_micros as f64 / 1e6);
                    Ok(())
                }
                ["metrics"] => match opts.get("format").copied() {
                    Some("prom") => {
                        let text = client.metrics_prom().map_err(|e| e.to_string())?;
                        print!("{text}");
                        Ok(())
                    }
                    Some("json") => {
                        let m = client.metrics().map_err(|e| e.to_string())?;
                        let line = serde_json::to_string(&m).map_err(|e| e.to_string())?;
                        println!("{line}");
                        Ok(())
                    }
                    Some(other) => Err(format!(
                        "unknown --format `{other}` (expected json or prom)"
                    )),
                    // No --format: a human-readable summary of the registry.
                    None => {
                        let m = client.metrics().map_err(|e| e.to_string())?;
                        println!("queries_total: {}", m.queries_total);
                        let label_text = |labels: &[(String, String)]| {
                            if labels.is_empty() {
                                String::new()
                            } else {
                                let parts: Vec<String> =
                                    labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
                                format!("{{{}}}", parts.join(","))
                            }
                        };
                        println!("counters:");
                        for c in &m.counters {
                            println!("  {}{} {}", c.name, label_text(&c.labels), c.value);
                        }
                        println!("gauges:");
                        for g in &m.gauges {
                            println!("  {}{} {}", g.name, label_text(&g.labels), g.value);
                        }
                        println!("histograms:");
                        for h in &m.histograms {
                            println!(
                                "  {}{} count={} p50={} p90={} p99={} p99.9={}",
                                h.name,
                                label_text(&h.labels),
                                h.count,
                                h.p50,
                                h.p90,
                                h.p99,
                                h.p999
                            );
                        }
                        Ok(())
                    }
                },
                ["metrics", ..] => {
                    Err("client metrics takes no positional arguments (use --format)".into())
                }
                ["trace"] => {
                    let n = opts
                        .get("last")
                        .map(|v| v.parse().map_err(|_| "bad --last"))
                        .transpose()?;
                    let traces = client.traces(n).map_err(|e| e.to_string())?;
                    if traces.is_empty() {
                        println!("no traces recorded yet");
                    }
                    for t in &traces {
                        let stages: Vec<String> = t
                            .stages
                            .iter()
                            .map(|s| format!("{} {:.1}us", s.stage, s.nanos as f64 / 1e3))
                            .collect();
                        println!(
                            "{:<7} s={:<6} t={:<6} {}{} {:>9.2} ms  [{}]",
                            t.workload,
                            t.s,
                            t.t,
                            if t.ok { "ok" } else { "err" },
                            if t.cached { " cached" } else { "" },
                            t.nanos as f64 / 1e6,
                            stages.join(" | ")
                        );
                    }
                    Ok(())
                }
                ["trace", ..] => {
                    Err("client trace takes no positional arguments (use --last N)".into())
                }
                ["load", name, path] => {
                    let quota = parse_quota(&opts)?;
                    let r = client
                        .load_graph(name, path, quota)
                        .map_err(|e| e.to_string())?;
                    let warm = if r.warm_entries > 0 {
                        format!(", {} warm cache entries", r.warm_entries)
                    } else {
                        String::new()
                    };
                    println!(
                        "loaded `{}`: {} nodes, {} edges via {} in {:.1} ms \
                         (epoch {}, quota {}{warm})",
                        r.name,
                        r.nodes,
                        r.edges,
                        r.load_path,
                        r.load_micros as f64 / 1e3,
                        r.epoch,
                        r.quota
                    );
                    Ok(())
                }
                ["load", ..] => Err("client load needs <name> <path>".into()),
                ["unload", name] => {
                    client.unload_graph(name).map_err(|e| e.to_string())?;
                    println!("unloaded `{name}`");
                    Ok(())
                }
                ["unload", ..] => Err("client unload needs <name>".into()),
                ["use", name] => {
                    let r = client.use_graph(name).map_err(|e| e.to_string())?;
                    println!(
                        "using `{}`: {} nodes, {} edges (epoch {})",
                        r.name, r.nodes, r.edges, r.epoch
                    );
                    Ok(())
                }
                ["use", ..] => Err("client use needs <name>".into()),
                ["update", s_raw, t_raw, p_raw] => {
                    let parse_id = |raw: &str, what: &str| -> Result<u32, String> {
                        raw.parse()
                            .map_err(|_| format!("cannot parse {what} node `{raw}`"))
                    };
                    let prob: f64 = p_raw
                        .parse()
                        .map_err(|_| format!("cannot parse probability `{p_raw}`"))?;
                    let update = relcomp_serve::protocol::EdgeProbUpdate {
                        s: parse_id(s_raw, "source")?,
                        t: parse_id(t_raw, "target")?,
                        prob,
                    };
                    let r = client.update(vec![update]).map_err(|e| e.to_string())?;
                    println!(
                        "updated {} edge(s); server now at epoch {}",
                        r.edges_updated, r.epoch
                    );
                    for m in &r.migrated {
                        match m.mode.as_str() {
                            "incremental" => println!(
                                "  {} index migrated incrementally ({} units recomputed)",
                                m.estimator, m.touched
                            ),
                            mode => println!("  {} {}", m.estimator, mode),
                        }
                    }
                    Ok(())
                }
                ["update", ..] => Err("client update needs <s> <t> <prob>".into()),
                ["reload"] => {
                    let path = opts.get("path").map(|p| p.to_string());
                    let r = client.reload(path).map_err(|e| e.to_string())?;
                    println!(
                        "reloaded: {} nodes, {} edges; server now at epoch {}",
                        r.nodes, r.edges, r.epoch
                    );
                    Ok(())
                }
                ["reload", ..] => {
                    Err("client reload takes no positional arguments (use --path FILE)".into())
                }
                ["shutdown"] => {
                    client.shutdown().map_err(|e| e.to_string())?;
                    println!("server at {addr} shutting down");
                    Ok(())
                }
                ["topk", s_raw] => {
                    let s: u32 = s_raw
                        .parse()
                        .map_err(|_| format!("cannot parse source node `{s_raw}`"))?;
                    let flags = BudgetFlags::parse(&opts)?;
                    let request = relcomp_serve::protocol::TopKRequest {
                        s,
                        k: opts
                            .get("k")
                            .map(|v| v.parse().map_err(|_| "bad --k"))
                            .transpose()?,
                        samples: flags.samples,
                        // Only forward a seed the user actually gave;
                        // otherwise the server's default applies.
                        seed: opts.contains_key("seed").then_some(seed),
                        eps: flags.eps,
                        confidence: flags.confidence,
                        time_budget_ms: flags.time_ms,
                    };
                    let r = client.topk(request).map_err(|e| e.to_string())?;
                    let stop = if r.stop_reason == "fixed_k" {
                        String::new()
                    } else {
                        format!("; {}", r.stop_reason)
                    };
                    println!(
                        "top-{} most reliable targets from {}   [K = {}{stop}; {:.2} ms{}]",
                        r.k,
                        r.s,
                        r.samples,
                        r.micros as f64 / 1e3,
                        if r.cached { "; cached" } else { "" }
                    );
                    if let Some(hw) = r.half_width {
                        println!("boundary half-width: {hw:.6}");
                    }
                    for ts in &r.targets {
                        println!("  node {:<8} R ≈ {:.4}", ts.node, ts.reliability);
                    }
                    Ok(())
                }
                ["topk", ..] => Err("client topk needs <s>".into()),
                ["dquery", s_raw, t_raw, d_raw] => {
                    let parse_id = |raw: &str, what: &str| -> Result<u32, String> {
                        raw.parse()
                            .map_err(|_| format!("cannot parse {what} node `{raw}`"))
                    };
                    let d: usize = d_raw
                        .parse()
                        .map_err(|_| format!("cannot parse hop bound `{d_raw}`"))?;
                    let flags = BudgetFlags::parse(&opts)?;
                    let request = relcomp_serve::protocol::DistanceQueryRequest {
                        s: parse_id(s_raw, "source")?,
                        t: parse_id(t_raw, "target")?,
                        d,
                        samples: flags.samples,
                        seed: opts.contains_key("seed").then_some(seed),
                        eps: flags.eps,
                        confidence: flags.confidence,
                        time_budget_ms: flags.time_ms,
                    };
                    let r = client.dquery(request).map_err(|e| e.to_string())?;
                    let ci = r
                        .half_width
                        .map(|hw| format!(" ± {hw:.6}"))
                        .unwrap_or_default();
                    let stop = if r.stop_reason == "fixed_k" {
                        String::new()
                    } else {
                        format!("; {}", r.stop_reason)
                    };
                    println!(
                        "R_{}({}, {}) ≈ {:.6}{ci}   [MC, d <= {}; K = {}{stop}; {:.2} ms{}]",
                        r.d,
                        r.s,
                        r.t,
                        r.reliability,
                        r.d,
                        r.samples,
                        r.micros as f64 / 1e3,
                        if r.cached { "; cached" } else { "" }
                    );
                    Ok(())
                }
                ["dquery", ..] => Err("client dquery needs <s> <t> <d>".into()),
                ["maximize", s_raw, t_raw] => {
                    let parse_id = |raw: &str, what: &str| -> Result<u32, String> {
                        raw.parse()
                            .map_err(|_| format!("cannot parse {what} node `{raw}`"))
                    };
                    let flags = BudgetFlags::parse(&opts)?;
                    let request = relcomp_serve::protocol::MaximizeRequest {
                        s: parse_id(s_raw, "source")?,
                        t: parse_id(t_raw, "target")?,
                        k: opts
                            .get("k")
                            .map(|v| v.parse().map_err(|_| "bad --k"))
                            .transpose()?,
                        boost: opts
                            .get("boost")
                            .map(|v| v.parse().map_err(|_| "bad --boost"))
                            .transpose()?,
                        candidates: opts
                            .get("candidates")
                            .map(|v| v.parse().map_err(|_| "bad --candidates"))
                            .transpose()?,
                        apply: opts.contains_key("apply"),
                        samples: flags.samples,
                        seed: opts.contains_key("seed").then_some(seed),
                        eps: flags.eps,
                        confidence: flags.confidence,
                        time_budget_ms: flags.time_ms,
                    };
                    let r = client.maximize(request).map_err(|e| e.to_string())?;
                    let applied = match r.applied_epoch {
                        Some(epoch) => format!("; applied, epoch {epoch}"),
                        None => String::new(),
                    };
                    println!(
                        "maximize R({}, {}): {:.6} -> {:.6} (gain {:+.6}) with {} upgrade(s)   \
                         [{} candidates, {} evaluations, K = {}; {:.2} ms{}{applied}]",
                        r.s,
                        r.t,
                        r.base_reliability,
                        r.reliability,
                        r.gain,
                        r.chosen.len(),
                        r.candidates,
                        r.evaluations,
                        r.samples,
                        r.micros as f64 / 1e3,
                        if r.cached { "; cached" } else { "" }
                    );
                    for c in &r.chosen {
                        println!(
                            "  edge {} -> {}: p {:.4} -> {:.4} (gain {:+.6}, R ≈ {:.6})",
                            c.s, c.t, c.old_prob, c.new_prob, c.gain, c.reliability
                        );
                    }
                    Ok(())
                }
                ["maximize", ..] => Err("client maximize needs <s> <t>".into()),
                [s_raw, t_raw] => {
                    let parse_id = |raw: &str, what: &str| -> Result<u32, String> {
                        raw.parse()
                            .map_err(|_| format!("cannot parse {what} node `{raw}`"))
                    };
                    let flags = BudgetFlags::parse(&opts)?;
                    let request = QueryRequest {
                        s: parse_id(s_raw, "source")?,
                        t: parse_id(t_raw, "target")?,
                        estimator: opts.get("estimator").map(|e| e.to_string()),
                        samples: flags.samples,
                        // Only forward a seed the user actually gave;
                        // otherwise the server's default applies.
                        seed: opts.contains_key("seed").then_some(seed),
                        eps: flags.eps,
                        confidence: flags.confidence,
                        time_budget_ms: flags.time_ms,
                    };
                    let r = client.query(request).map_err(|e| e.to_string())?;
                    let ci = r
                        .half_width
                        .map(|hw| format!(" ± {hw:.6}"))
                        .unwrap_or_default();
                    let stop = if r.stop_reason == "fixed_k" {
                        String::new()
                    } else {
                        format!("; {}", r.stop_reason)
                    };
                    println!(
                        "R({}, {}) ≈ {:.6}{ci}   [{}; K = {}{stop}; {:.2} ms{}]",
                        r.s,
                        r.t,
                        r.reliability,
                        r.estimator,
                        r.samples,
                        r.micros as f64 / 1e3,
                        if r.cached { "; cached" } else { "" }
                    );
                    Ok(())
                }
                _ => Err(
                    "client needs <s> <t>, or one of: stats, metrics, trace, ping, \
                     shutdown, topk <s>, dquery <s> <t> <d>, maximize <s> <t>, \
                     update <s> <t> <prob>, reload"
                        .into(),
                ),
            }
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts<'a>(pairs: &[(&'a str, &'a str)]) -> HashMap<&'a str, &'a str> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn zero_samples_is_a_parse_error() {
        let err = BudgetFlags::parse(&opts(&[("samples", "0")])).unwrap_err();
        assert!(err.contains("--samples must be positive"), "{err}");
        // Negative and garbage values fail at the same point, with the
        // flag named.
        for bad in ["-5", "many"] {
            let err = BudgetFlags::parse(&opts(&[("samples", bad)])).unwrap_err();
            assert!(err.contains("--samples"), "{err}");
        }
        assert_eq!(
            BudgetFlags::parse(&opts(&[("samples", "100")]))
                .unwrap()
                .samples,
            Some(100)
        );
    }

    #[test]
    fn zero_quota_is_a_parse_error() {
        let err = parse_quota(&opts(&[("quota", "0")])).unwrap_err();
        assert!(err.contains("--quota must be positive"), "{err}");
        for bad in ["-1", "lots"] {
            let err = parse_quota(&opts(&[("quota", bad)])).unwrap_err();
            assert!(err.contains("--quota"), "{err}");
        }
        assert_eq!(parse_quota(&opts(&[("quota", "8")])).unwrap(), Some(8));
        assert_eq!(parse_quota(&opts(&[])).unwrap(), None);
    }

    #[test]
    fn apply_is_a_bare_flag() {
        let args: Vec<String> = ["maximize", "0", "3", "--apply", "--k", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (pos, options) = split_options(&args).unwrap();
        assert_eq!(pos, vec!["maximize", "0", "3"]);
        assert_eq!(options.get("apply"), Some(&"true"));
        assert_eq!(options.get("k"), Some(&"2"));
    }
}
