//! Sensor-network scenario: link quality between two terminals in a lossy
//! wireless sensor network — the paper's first motivating application
//! (Ghosh et al., INFOCOM'07).
//!
//! Demonstrates the cheap-to-expensive query pipeline the extension
//! modules enable:
//!
//! 1. polynomial-time **bounds** — if the enclosure is already tight,
//!    answer without sampling;
//! 2. exact **reliability-preserving reduction** (series/parallel/dead-end
//!    rewrites) to shrink the instance;
//! 3. a sampling **estimator** (RSS) on the reduced graph.
//!
//! ```text
//! cargo run --release --example sensor_network
//! ```

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use relcomp::prelude::*;
use relcomp_core::bounds::reliability_bounds;
use relcomp_core::reduce::reduce_for_query;
use relcomp_ugraph::generators::grid_lattice;
use relcomp_ugraph::probmodel::{Direction, ProbModel};
use std::sync::Arc;

fn main() {
    // 30x30 sensor grid plus a few long-range radio links; link quality
    // follows a snapshot-availability model.
    let (rows, cols) = (30usize, 30usize);
    let n = rows * cols;
    let mut pairs = grid_lattice(rows, cols);
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    for _ in 0..60 {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a != b {
            pairs.push((NodeId(a.min(b)), NodeId(a.max(b))));
        }
    }
    let graph = Arc::new(ProbModel::SnapshotRatio { snapshots: 90 }.apply(
        n,
        &pairs,
        Direction::Bidirected,
        &mut rng,
    ));
    println!(
        "sensor network: {} motes, {} directed radio links",
        graph.num_nodes(),
        graph.num_edges()
    );

    let queries = [
        (0u32, (n - 1) as u32),
        (5, 40),
        (100, 700),
        (31, 32),
        (0, 29),
    ];
    let mut estimator = RecursiveStratified::new(Arc::clone(&graph));
    println!(
        "\n{:<16} {:>9} {:>9} {:>7} {:>12} {:>10}",
        "terminals", "lower", "upper", "width", "reduced m/m0", "R (RSS)"
    );
    for (s_raw, t_raw) in queries {
        let (s, t) = (NodeId(s_raw), NodeId(t_raw));
        // Step 1: bounds.
        let b = reliability_bounds(&graph, s, t, 6);
        // Step 2: exact reduction.
        let reduced = reduce_for_query(&graph, s, t);
        let ratio = reduced.edge_ratio(&graph);
        // Step 3: sample only when the enclosure is loose.
        let estimate = if b.width() < 0.02 {
            (b.lower + b.upper) / 2.0 // bounds already answer the query
        } else {
            let mut inner = RecursiveStratified::new(Arc::new(reduced.graph));
            inner
                .estimate(reduced.s, reduced.t, 1500, &mut rng)
                .reliability
        };
        // Cross-check against an estimator on the full graph.
        let full = estimator.estimate(s, t, 1500, &mut rng).reliability;
        assert!(
            (estimate - full).abs() < 0.08,
            "pipeline {estimate} vs direct {full}"
        );
        println!(
            "{:<16} {:>9.4} {:>9.4} {:>7.4} {:>12.2} {:>10.4}",
            format!("{s_raw} -> {t_raw}"),
            b.lower,
            b.upper,
            b.width(),
            ratio,
            estimate
        );
    }
    println!("\nTight bounds answer instantly; loose ones fall through to RSS on the");
    println!("reduced instance — all three stages preserve R(s, t) exactly.");
}
