//! Social-influence scenario: how reliably does information starting at a
//! user reach a target user under the independent-cascade model? The
//! paper notes s-t reliability is exactly the probability of an influence
//! cascade reaching t (Kempe et al.'s IC model).
//!
//! Demonstrates the convergence protocol: naive fixed-K estimation vs the
//! paper's dispersion-based stopping rule, on a LastFM-like social graph.
//!
//! ```text
//! cargo run --release --example influence_paths
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use relcomp::prelude::*;
use relcomp_eval::convergence::{run_convergence, ConvergenceConfig};
use std::sync::Arc;

fn main() {
    // LastFM analog with inverse-out-degree probabilities — the classic
    // weighted-cascade instantiation of the IC model.
    let graph = Arc::new(Dataset::LastFm.generate_with_scale(0.3, 11));
    println!(
        "social network: {} users, {} influence edges (weighted cascade)",
        graph.num_nodes(),
        graph.num_edges()
    );

    let workload = Workload::generate(&graph, 10, 2, 5);
    println!("workload: {} seed/target pairs at 2 hops\n", workload.len());

    let cfg = ConvergenceConfig {
        k_start: 250,
        k_step: 250,
        k_max: 2000,
        repeats: 10,
        rho_threshold: 1e-3,
    };

    for kind in [EstimatorKind::Mc, EstimatorKind::Rss] {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let params = SuiteParams::default();
        let mut est = build_estimator(kind, Arc::clone(&graph), params, &mut rng);
        let run = run_convergence(est.as_mut(), &workload, &cfg, &mut rng);
        println!("estimator {}:", est.name());
        for point in &run.history {
            println!(
                "  K = {:>4}  avg influence prob = {:.4}  dispersion rho = {:.5}",
                point.metrics.k, point.metrics.avg_reliability, point.metrics.rho,
            );
        }
        println!(
            "  -> converged at K = {} ({})\n",
            run.final_k(),
            if run.converged {
                "rho < 0.001"
            } else {
                "cap reached"
            },
        );
    }
    println!("Note the recursive estimator converging with fewer samples — the");
    println!("paper's core finding on why fixed-K comparisons are unfair.");
}
