//! Quickstart: build a small uncertain graph, run all six estimators on
//! the same query, and compare against the exact answer.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use relcomp::prelude::*;
use relcomp_core::exact::exact_reliability;
use std::sync::Arc;

fn main() {
    // The paper's Figure 6 example graph: 7 nodes, bidirected
    // probabilistic edges.
    let edges = [
        (0u32, 1u32, 0.5),
        (0, 2, 0.75),
        (0, 4, 0.75),
        (0, 6, 0.15),
        (1, 2, 0.75),
        (1, 5, 0.75),
        (1, 6, 0.5),
        (2, 6, 0.2),
        (3, 4, 0.5),
        (4, 6, 0.25),
        (5, 6, 0.5),
    ];
    let mut builder = GraphBuilder::new(7);
    for (u, v, p) in edges {
        builder.add_bidirected(NodeId(u), NodeId(v), p).unwrap();
    }
    let graph = Arc::new(builder.build());
    let (s, t) = (NodeId(3), NodeId(5));

    let exact = exact_reliability(&graph, s, t);
    println!(
        "graph: {} nodes, {} directed edges",
        graph.num_nodes(),
        graph.num_edges()
    );
    println!("exact R({s}, {t}) = {exact:.4}\n");

    let k = 20_000;
    let params = SuiteParams {
        bfs_sharing_worlds: k,
        ..Default::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    println!(
        "{:<12} {:>10} {:>10} {:>12}",
        "estimator", "estimate", "|error|", "time"
    );
    for kind in EstimatorKind::PAPER_SIX {
        let mut est = build_estimator(kind, Arc::clone(&graph), params, &mut rng);
        let result = est.estimate(s, t, k, &mut rng);
        println!(
            "{:<12} {:>10.4} {:>10.4} {:>9.2} ms",
            est.name(),
            result.reliability,
            (result.reliability - exact).abs(),
            result.elapsed.as_secs_f64() * 1e3,
        );
    }
    println!("\nAll six estimators are unbiased: estimates cluster around {exact:.4}.");
}
