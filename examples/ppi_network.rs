//! Protein-protein interaction (PPI) scenario: find the proteins most
//! reliably connected to a query protein in a noisy interaction network —
//! one of the paper's motivating applications (Jin et al.'s PPI use case).
//!
//! PPI edges carry confidence scores from noisy experiments; we model the
//! network with the BioMine-style probability model and rank candidate
//! proteins by estimated reliability from a source protein, using RSS
//! (the paper's best variance/time trade-off for repeated queries).
//!
//! ```text
//! cargo run --release --example ppi_network
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use relcomp::prelude::*;
use relcomp_ugraph::traversal::hop_distances;
use std::sync::Arc;

fn main() {
    // A BioMine-like analog stands in for the PPI network: directed,
    // heavy-tailed, with confidence-combination edge probabilities.
    let graph = Arc::new(Dataset::BioMine.generate_with_scale(0.01, 7));
    println!(
        "PPI-like network: {} proteins, {} scored interactions",
        graph.num_nodes(),
        graph.num_edges()
    );

    // Query protein: a reasonably connected node.
    let source = (0..graph.num_nodes() as u32)
        .map(NodeId)
        .max_by_key(|&v| graph.out_degree(v))
        .expect("non-empty graph");
    println!(
        "query protein: node {source} (out-degree {})",
        graph.out_degree(source)
    );

    // Candidates: proteins within 2 interaction hops.
    let dist = hop_distances(&graph, source, 2);
    let candidates: Vec<NodeId> = dist
        .iter()
        .enumerate()
        .filter(|(_, d)| matches!(d, Some(2)))
        .map(|(i, _)| NodeId::from_index(i))
        .take(12)
        .collect();
    println!(
        "scoring {} candidate proteins at 2 hops...\n",
        candidates.len()
    );

    let mut rss = RecursiveStratified::new(Arc::clone(&graph));
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut scored: Vec<(NodeId, f64)> = candidates
        .iter()
        .map(|&t| (t, rss.estimate(source, t, 1000, &mut rng).reliability))
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite reliabilities"));

    println!("{:<10} {:>12}", "protein", "reliability");
    for (protein, reliability) in scored.iter().take(10) {
        println!("{:<10} {:>12.4}", protein.to_string(), reliability);
    }
    println!("\nTop-ranked proteins are the most probable interaction partners of {source}.");
}
