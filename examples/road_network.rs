//! Road-network scenario: probabilistic path feasibility on a grid road
//! network whose segments fail (congestion/closures), following the
//! paper's probabilistic road-network use case (Hua & Pei).
//!
//! Shows the index-based workflow: build a ProbTree index once, then
//! answer many origin-destination queries fast — including coupling
//! ProbTree with RSS (§3.8 of the paper).
//!
//! ```text
//! cargo run --release --example road_network
//! ```

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use relcomp::prelude::*;
use relcomp_core::probtree::{InnerEstimator, ProbTree};
use relcomp_ugraph::generators::grid_lattice;
use relcomp_ugraph::probmodel::{Direction, ProbModel};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // 40x40 grid; each road segment open with a snapshot-style
    // availability probability.
    let (rows, cols) = (40usize, 40usize);
    let pairs = grid_lattice(rows, cols);
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let graph = Arc::new(ProbModel::SnapshotRatio { snapshots: 60 }.apply(
        rows * cols,
        &pairs,
        Direction::Bidirected,
        &mut rng,
    ));
    println!(
        "road network: {} intersections, {} directed segments",
        graph.num_nodes(),
        graph.num_edges()
    );

    let build_start = Instant::now();
    let mut plain = ProbTree::new(Arc::clone(&graph));
    let mut coupled = ProbTree::with_inner(Arc::clone(&graph), InnerEstimator::Rss);
    println!(
        "ProbTree index built in {:.1} ms (size {} bytes)\n",
        build_start.elapsed().as_secs_f64() * 1e3 / 2.0,
        plain.index().size_bytes(),
    );

    let node = |r: usize, c: usize| NodeId((r * cols + c) as u32);
    println!(
        "{:<24} {:>12} {:>12} {:>14}",
        "origin -> destination", "ProbTree", "PT+RSS", "PT time (ms)"
    );
    for _ in 0..6 {
        let (r1, c1) = (rng.gen_range(0..rows), rng.gen_range(0..cols));
        let dr = rng.gen_range(1..6usize);
        let dc = rng.gen_range(1..6usize);
        let (r2, c2) = ((r1 + dr).min(rows - 1), (c1 + dc).min(cols - 1));
        let (s, t) = (node(r1, c1), node(r2, c2));
        if s == t {
            continue;
        }
        let a = plain.estimate(s, t, 2000, &mut rng);
        let b = coupled.estimate(s, t, 2000, &mut rng);
        println!(
            "({r1:>2},{c1:>2}) -> ({r2:>2},{c2:>2})      {:>12.4} {:>12.4} {:>14.2}",
            a.reliability,
            b.reliability,
            a.elapsed.as_secs_f64() * 1e3,
        );
    }
    println!("\nBoth agree within sampling noise; the coupled estimator needs fewer");
    println!("samples to converge (Table 16 of the paper).");
}
