//! Property-based tests (proptest) on the core invariants of the library.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use relcomp::prelude::*;
use relcomp_core::exact::exact_reliability;
use relcomp_ugraph::io::{read_graph, write_graph};
use relcomp_ugraph::probability::Probability as Prob;
use std::sync::Arc;

/// Strategy: a random small digraph as (n, edge list) with valid probs.
fn small_digraph() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (4usize..9).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 0.05f64..1.0);
        (Just(n), proptest::collection::vec(edge, 0..14))
    })
}

fn build(n: usize, edges: &[(u32, u32, f64)]) -> UncertainGraph {
    let mut b = GraphBuilder::new(n).duplicate_policy(relcomp_ugraph::DuplicatePolicy::CombineOr);
    for &(u, v, p) in edges {
        if u != v {
            b.add_edge(NodeId(u), NodeId(v), p).unwrap();
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exact reliability is a probability.
    #[test]
    fn exact_reliability_is_in_unit_interval((n, edges) in small_digraph()) {
        let g = build(n, &edges);
        prop_assume!(g.num_edges() <= 20);
        let r = exact_reliability(&g, NodeId(0), NodeId((n - 1) as u32));
        prop_assert!((0.0..=1.0 + 1e-12).contains(&r));
    }

    /// Raising one edge's probability never lowers exact reliability.
    #[test]
    fn reliability_is_monotone_in_edge_probability(
        (n, edges) in small_digraph(),
        bump in 0.0f64..0.5,
    ) {
        let g = build(n, &edges);
        prop_assume!(g.num_edges() >= 1 && g.num_edges() <= 18);
        let (s, t) = (NodeId(0), NodeId((n - 1) as u32));
        let before = exact_reliability(&g, s, t);

        // Rebuild with the first edge's probability bumped up.
        let mut bumped: Vec<(u32, u32, f64)> = g
            .edges()
            .map(|(_, u, v, p)| (u.0, v.0, p.value()))
            .collect();
        bumped[0].2 = (bumped[0].2 + bump).min(1.0);
        let g2 = build(n, &bumped);
        let after = exact_reliability(&g2, s, t);
        prop_assert!(after >= before - 1e-9, "before {before}, after {after}");
    }

    /// MC at a healthy K lands within a loose Chernoff-style band of the
    /// exact value.
    #[test]
    fn mc_concentrates_near_exact((n, edges) in small_digraph(), seed in 0u64..1000) {
        let g = Arc::new(build(n, &edges));
        prop_assume!(g.num_edges() <= 18);
        let (s, t) = (NodeId(0), NodeId((n - 1) as u32));
        let exact = exact_reliability(&g, s, t);
        let mut mc = McSampling::new(Arc::clone(&g));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let est = mc.estimate(s, t, 8_000, &mut rng);
        // 8000 samples: SD <= 0.0056; 6 sigma ≈ 0.034.
        prop_assert!((est.reliability - exact).abs() < 0.05,
            "mc {} vs exact {exact}", est.reliability);
    }

    /// ProbTree extraction is lossless: exact reliability of the query
    /// graph equals exact reliability of the original (w = 2 claim).
    #[test]
    fn probtree_extraction_is_lossless((n, edges) in small_digraph()) {
        let g = Arc::new(build(n, &edges));
        prop_assume!(g.num_edges() <= 16);
        let (s, t) = (NodeId(0), NodeId((n - 1) as u32));
        let exact = exact_reliability(&g, s, t);
        let index = relcomp_core::probtree::ProbTreeIndex::build(Arc::clone(&g));
        let q = index.extract_query_graph(s, t);
        prop_assume!(q.graph.num_edges() <= 20);
        let extracted = exact_reliability(&q.graph, q.s, q.t);
        prop_assert!((extracted - exact).abs() < 1e-9,
            "extraction changed reliability: {extracted} vs {exact}");
    }

    /// Graph IO round-trips losslessly.
    #[test]
    fn io_round_trip((n, edges) in small_digraph()) {
        let g = build(n, &edges);
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(&buf[..]).unwrap();
        prop_assert_eq!(g2.num_nodes(), g.num_nodes());
        prop_assert_eq!(g2.num_edges(), g.num_edges());
        for (e, u, v, p) in g.edges() {
            let e2 = g2.find_edge(u, v).expect("edge preserved");
            prop_assert_eq!(e2, e);
            prop_assert!((g2.prob(e2).value() - p.value()).abs() < 1e-12);
        }
    }

    /// Independent-OR aggregation is commutative, monotone, and bounded.
    #[test]
    fn or_independent_axioms(p in 0.01f64..1.0, q in 0.01f64..1.0) {
        let (pp, qq) = (Prob::new(p).unwrap(), Prob::new(q).unwrap());
        let a = pp.or_independent(qq).value();
        let b = qq.or_independent(pp).value();
        prop_assert!((a - b).abs() < 1e-12);
        prop_assert!(a >= p - 1e-12 && a >= q - 1e-12);
        prop_assert!(a <= 1.0 + 1e-12);
    }

    /// Series composition: chain reliability is the product of edge
    /// probabilities.
    #[test]
    fn series_chain_closed_form(probs in proptest::collection::vec(0.05f64..1.0, 1..7)) {
        let mut b = GraphBuilder::new(probs.len() + 1);
        for (i, &p) in probs.iter().enumerate() {
            b.add_edge(NodeId(i as u32), NodeId(i as u32 + 1), p).unwrap();
        }
        let g = b.build();
        let r = exact_reliability(&g, NodeId(0), NodeId(probs.len() as u32));
        let expect: f64 = probs.iter().product();
        prop_assert!((r - expect).abs() < 1e-9);
    }

    /// Workload pairs always sit at the requested hop distance.
    #[test]
    fn workload_distance_invariant(seed in 0u64..50) {
        let g = Dataset::LastFm.generate_with_scale(0.05, seed);
        let w = Workload::generate(&g, 5, 2, seed);
        for &(s, t) in &w.pairs {
            let d = relcomp_ugraph::traversal::hop_distances(&g, s, 3);
            prop_assert_eq!(d[t.index()], Some(2));
        }
    }
}
