//! Property-based tests for the dynamic-update subsystem: a
//! [`with_updated_probs`] snapshot must be indistinguishable — bit for
//! bit — from tearing the graph down and rebuilding it from scratch
//! with the new probabilities, both at the graph level and through the
//! estimators' incremental index-maintenance paths.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use relcomp_core::mc::McSampling;
use relcomp_core::probtree::ProbTree;
use relcomp_core::{Estimator, UpdateOutcome};
use relcomp_ugraph::{EdgeUpdate, GraphBuilder, NodeId, UncertainGraph};
use std::sync::Arc;

/// Strategy: a random small digraph as (n, edge list) with valid probs.
fn small_digraph() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (4usize..9).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 0.05f64..1.0);
        (Just(n), proptest::collection::vec(edge, 1..14))
    })
}

/// Strategy: raw update batch as (edge selector, new probability); the
/// selector is reduced modulo the graph's edge count.
fn update_batch() -> impl Strategy<Value = Vec<(usize, f64)>> {
    proptest::collection::vec((0usize..64, 0.05f64..1.0), 1..6)
}

fn build(n: usize, edges: &[(u32, u32, f64)]) -> Arc<UncertainGraph> {
    let mut b = GraphBuilder::new(n).duplicate_policy(relcomp_ugraph::DuplicatePolicy::CombineOr);
    for &(u, v, p) in edges {
        if u != v {
            b.add_edge(NodeId(u), NodeId(v), p).unwrap();
        }
    }
    Arc::new(b.build())
}

fn resolve(graph: &UncertainGraph, raw: &[(usize, f64)]) -> Vec<EdgeUpdate> {
    raw.iter()
        .map(|&(sel, p)| {
            EdgeUpdate::new(relcomp_ugraph::EdgeId((sel % graph.num_edges()) as u32), p).unwrap()
        })
        .collect()
}

/// A graph structurally identical to `snap`, built from scratch (fresh
/// CSR arrays, no shared topology).
fn rebuild_from_scratch(snap: &UncertainGraph) -> Arc<UncertainGraph> {
    let mut b = GraphBuilder::new(snap.num_nodes()).with_edge_capacity(snap.num_edges());
    for (_, u, v, p) in snap.edges() {
        b.add_edge_prob(u, v, p).unwrap();
    }
    Arc::new(b.build())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The snapshot and the from-scratch rebuild are the same graph,
    /// edge by edge, bit by bit — and the snapshot never disturbs its
    /// parent epoch.
    #[test]
    fn snapshot_equals_rebuild_edge_for_edge(
        (n, edges) in small_digraph(),
        raw in update_batch(),
    ) {
        let g = build(n, &edges);
        prop_assume!(g.num_edges() >= 1);
        let before: Vec<u64> = g.edges().map(|(_, _, _, p)| p.value().to_bits()).collect();
        let updates = resolve(&g, &raw);
        let snap = g.with_updated_probs(&updates);
        let rebuilt = rebuild_from_scratch(&snap);

        prop_assert!(g.same_topology(&snap));
        prop_assert!(!snap.same_topology(&rebuilt));
        prop_assert_eq!(snap.num_nodes(), rebuilt.num_nodes());
        prop_assert_eq!(snap.num_edges(), rebuilt.num_edges());
        for ((ea, ua, va, pa), (eb, ub, vb, pb)) in snap.edges().zip(rebuilt.edges()) {
            prop_assert_eq!((ea, ua, va), (eb, ub, vb));
            prop_assert_eq!(pa.value().to_bits(), pb.value().to_bits());
        }
        let after: Vec<u64> = g.edges().map(|(_, _, _, p)| p.value().to_bits()).collect();
        prop_assert_eq!(before, after, "the parent epoch must be untouched");
    }

    /// MC over the snapshot is bit-identical to MC over a from-scratch
    /// rebuild under the same seed.
    #[test]
    fn mc_on_snapshot_is_bit_identical_to_rebuild(
        (n, edges) in small_digraph(),
        raw in update_batch(),
        seed in 0u64..1000,
    ) {
        let g = build(n, &edges);
        prop_assume!(g.num_edges() >= 1);
        let updates = resolve(&g, &raw);
        let snap = g.with_updated_probs(&updates);
        let rebuilt = rebuild_from_scratch(&snap);
        let (s, t) = (NodeId(0), NodeId((n - 1) as u32));

        let mut rng_a = ChaCha8Rng::seed_from_u64(seed);
        let a = McSampling::new(Arc::clone(&snap)).estimate(s, t, 400, &mut rng_a);
        let mut rng_b = ChaCha8Rng::seed_from_u64(seed);
        let b = McSampling::new(rebuilt).estimate(s, t, 400, &mut rng_b);
        prop_assert_eq!(a.reliability.to_bits(), b.reliability.to_bits());
    }

    /// ProbTree maintained incrementally through `apply_updates` answers
    /// bit-identically to a ProbTree built fresh over the from-scratch
    /// rebuilt graph: incremental maintenance loses nothing.
    #[test]
    fn probtree_incremental_is_bit_identical_to_rebuild(
        (n, edges) in small_digraph(),
        raw in update_batch(),
        seed in 0u64..1000,
    ) {
        let g = build(n, &edges);
        prop_assume!(g.num_edges() >= 1);
        let updates = resolve(&g, &raw);
        let snap = g.with_updated_probs(&updates);
        let rebuilt = rebuild_from_scratch(&snap);
        let (s, t) = (NodeId(0), NodeId((n - 1) as u32));

        let mut maintained = ProbTree::new(Arc::clone(&g));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let outcome = maintained.apply_updates(&snap, &updates, &mut rng);
        prop_assert!(matches!(outcome, UpdateOutcome::Incremental { .. }));

        let mut fresh = ProbTree::new(rebuilt);
        let mut rng_a = ChaCha8Rng::seed_from_u64(seed);
        let a = maintained.estimate(s, t, 400, &mut rng_a);
        let mut rng_b = ChaCha8Rng::seed_from_u64(seed);
        let b = fresh.estimate(s, t, 400, &mut rng_b);
        prop_assert_eq!(a.reliability.to_bits(), b.reliability.to_bits());
    }
}
