//! End-to-end smoke test of the `relcomp` CLI: `generate` a tiny graph,
//! read it back with `stats`, and answer a `query` — all with fixed
//! seeds, so the outputs below are stable across runs and platforms.

use std::path::PathBuf;
use std::process::{Command, Output};

fn relcomp(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_relcomp"))
        .args(args)
        .output()
        .expect("relcomp binary runs")
}

fn stdout(out: &Output) -> String {
    assert!(
        out.status.success(),
        "exit {:?}\nstdout: {}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn temp_graph_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("relcomp_cli_smoke_{}_{name}", std::process::id()));
    p
}

#[test]
fn generate_stats_query_round_trip() {
    let path = temp_graph_path("er.txt");
    let path_str = path.to_str().expect("utf-8 temp path");

    // generate: a small LastFM analog with a fixed seed.
    let out = stdout(&relcomp(&[
        "generate", "lastfm", "--out", path_str, "--scale", "0.02", "--seed", "42",
    ]));
    assert!(out.contains("wrote"), "unexpected generate output: {out}");

    // stats: the graph reads back with plausible structure.
    let out = stdout(&relcomp(&["stats", path_str]));
    assert!(out.contains("nodes:"), "missing node count: {out}");
    assert!(out.contains("edges:"), "missing edge count: {out}");
    assert!(
        out.contains("probability: mean"),
        "missing prob summary: {out}"
    );
    let nodes: usize = out
        .lines()
        .find_map(|l| l.strip_prefix("nodes:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("parsable node count");
    assert!(nodes > 10, "suspiciously small graph: {nodes} nodes");

    // query: a reliability estimate in [0, 1] with the requested K.
    let out = stdout(&relcomp(&[
        "query",
        path_str,
        "0",
        "3",
        "--estimator",
        "mc",
        "--k",
        "2000",
        "--seed",
        "7",
    ]));
    assert!(out.contains("K = 2000"), "missing sample count: {out}");
    let reliability: f64 = out
        .split('≈')
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|v| v.parse().ok())
        .expect("parsable reliability");
    assert!(
        (0.0..=1.0).contains(&reliability),
        "reliability {reliability} out of range"
    );

    // Same seeds ⇒ same estimate: determinism end to end.
    let again = stdout(&relcomp(&[
        "query",
        path_str,
        "0",
        "3",
        "--estimator",
        "mc",
        "--k",
        "2000",
        "--seed",
        "7",
    ]));
    let line = |s: &str| {
        s.lines()
            .next()
            .map(|l| l.split('[').next().unwrap_or("").to_owned())
    };
    assert_eq!(
        line(&out),
        line(&again),
        "query is not deterministic per seed"
    );

    std::fs::remove_file(&path).ok();
}

#[test]
fn bad_usage_exits_nonzero_with_usage() {
    let out = relcomp(&["no-such-command"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "stderr should carry usage: {err}");
}
