//! End-to-end smoke test of the `relcomp` CLI: `generate` a tiny graph,
//! read it back with `stats`, and answer a `query` — all with fixed
//! seeds, so the outputs below are stable across runs and platforms.

use std::path::PathBuf;
use std::process::{Command, Output};

fn relcomp(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_relcomp"))
        .args(args)
        .output()
        .expect("relcomp binary runs")
}

fn stdout(out: &Output) -> String {
    assert!(
        out.status.success(),
        "exit {:?}\nstdout: {}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn temp_graph_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("relcomp_cli_smoke_{}_{name}", std::process::id()));
    p
}

#[test]
fn generate_stats_query_round_trip() {
    let path = temp_graph_path("er.txt");
    let path_str = path.to_str().expect("utf-8 temp path");

    // generate: a small LastFM analog with a fixed seed.
    let out = stdout(&relcomp(&[
        "generate", "lastfm", "--out", path_str, "--scale", "0.02", "--seed", "42",
    ]));
    assert!(out.contains("wrote"), "unexpected generate output: {out}");

    // stats: the graph reads back with plausible structure.
    let out = stdout(&relcomp(&["stats", path_str]));
    assert!(out.contains("nodes:"), "missing node count: {out}");
    assert!(out.contains("edges:"), "missing edge count: {out}");
    assert!(
        out.contains("probability: mean"),
        "missing prob summary: {out}"
    );
    let nodes: usize = out
        .lines()
        .find_map(|l| l.strip_prefix("nodes:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("parsable node count");
    assert!(nodes > 10, "suspiciously small graph: {nodes} nodes");

    // query: a reliability estimate in [0, 1] with the requested K.
    // (`--k` is the deprecated alias of `--samples`; it still works but
    // warns on stderr.)
    let raw = relcomp(&[
        "query",
        path_str,
        "0",
        "3",
        "--estimator",
        "mc",
        "--k",
        "2000",
        "--seed",
        "7",
    ]);
    let deprecation = String::from_utf8_lossy(&raw.stderr).into_owned();
    assert!(
        deprecation.contains("deprecated") && deprecation.contains("--samples"),
        "`--k` must print a deprecation note pointing at --samples: {deprecation}"
    );
    let out = stdout(&raw);
    assert!(out.contains("K = 2000"), "missing sample count: {out}");
    // The canonical spelling is silent.
    let canonical = relcomp(&[
        "query",
        path_str,
        "0",
        "3",
        "--estimator",
        "mc",
        "--samples",
        "2000",
        "--seed",
        "7",
    ]);
    assert!(
        !String::from_utf8_lossy(&canonical.stderr).contains("deprecated"),
        "--samples must not warn"
    );
    let reliability: f64 = out
        .split('≈')
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|v| v.parse().ok())
        .expect("parsable reliability");
    assert!(
        (0.0..=1.0).contains(&reliability),
        "reliability {reliability} out of range"
    );

    // Same seeds ⇒ same estimate: determinism end to end.
    let again = stdout(&relcomp(&[
        "query",
        path_str,
        "0",
        "3",
        "--estimator",
        "mc",
        "--k",
        "2000",
        "--seed",
        "7",
    ]));
    let line = |s: &str| {
        s.lines()
            .next()
            .map(|l| l.split('[').next().unwrap_or("").to_owned())
    };
    assert_eq!(
        line(&out),
        line(&again),
        "query is not deterministic per seed"
    );

    std::fs::remove_file(&path).ok();
}

#[test]
fn adaptive_query_reports_ci_and_stop_reason() {
    let path = temp_graph_path("adaptive.txt");
    let path_str = path.to_str().expect("utf-8 temp path");
    stdout(&relcomp(&[
        "generate", "lastfm", "--out", path_str, "--scale", "0.02", "--seed", "42",
    ]));

    // eps-targeted query: the output carries a ± half-width and a stop
    // reason, and the consumed K respects the cap.
    let out = stdout(&relcomp(&[
        "query",
        path_str,
        "0",
        "3",
        "--estimator",
        "mc",
        "--eps",
        "0.2",
        "--samples",
        "30000",
        "--seed",
        "7",
    ]));
    assert!(out.contains('±'), "missing half-width: {out}");
    assert!(
        out.contains("converged") || out.contains("max_samples"),
        "missing stop reason: {out}"
    );
    let k: usize = out
        .split("K = ")
        .nth(1)
        .and_then(|rest| {
            rest.split(|c: char| !c.is_ascii_digit())
                .next()
                .and_then(|v| v.parse().ok())
        })
        .expect("parsable K");
    assert!(k <= 30_000, "consumed {k} > declared cap");

    // Bad adaptive values are rejected before any sampling — both the
    // unparseable and the parseable-but-invalid kind.
    let bad = relcomp(&["query", path_str, "0", "3", "--eps", "oops"]);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("bad --eps"));
    let zero = relcomp(&["query", path_str, "0", "3", "--eps", "0"]);
    assert!(!zero.status.success());
    assert!(
        String::from_utf8_lossy(&zero.stderr).contains("--eps must be a positive"),
        "invalid eps must be a usage error, not a panic"
    );
    let conf = relcomp(&[
        "query",
        path_str,
        "0",
        "3",
        "--eps",
        "0.1",
        "--confidence",
        "1.0",
    ]);
    assert!(!conf.status.success());
    assert!(String::from_utf8_lossy(&conf.stderr).contains("--confidence must be in (0, 1)"));

    std::fs::remove_file(&path).ok();
}

#[test]
fn topk_and_dquery_subcommands_cover_fixed_and_adaptive_budgets() {
    let path = temp_graph_path("workloads.txt");
    let path_str = path.to_str().expect("utf-8 temp path");
    stdout(&relcomp(&[
        "generate", "lastfm", "--out", path_str, "--scale", "0.02", "--seed", "42",
    ]));

    // Fixed topk: header carries the consumed K, rows carry estimates.
    let out = stdout(&relcomp(&[
        "topk",
        path_str,
        "0",
        "--k",
        "3",
        "--samples",
        "1000",
        "--seed",
        "7",
    ]));
    assert!(out.contains("top-3 most reliable targets"), "{out}");
    assert!(out.contains("K = 1000"), "missing sample count: {out}");
    assert!(out.contains("R ≈"), "missing estimates: {out}");

    // Deterministic per seed.
    let again = stdout(&relcomp(&[
        "topk",
        path_str,
        "0",
        "--k",
        "3",
        "--samples",
        "1000",
        "--seed",
        "7",
    ]));
    let rows = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| l.contains("R ≈"))
            .map(str::to_owned)
            .collect()
    };
    assert_eq!(
        rows(&out),
        rows(&again),
        "topk is not deterministic per seed"
    );

    // eps-adaptive topk: the output reports the session's stop reason
    // and the boundary half-width.
    let out = stdout(&relcomp(&[
        "topk",
        path_str,
        "0",
        "--k",
        "3",
        "--eps",
        "0.2",
        "--samples",
        "30000",
        "--seed",
        "7",
    ]));
    assert!(
        out.contains("converged") || out.contains("max_samples"),
        "missing stop reason: {out}"
    );
    assert!(out.contains("boundary half-width"), "{out}");

    // Fixed dquery: R_d line with the hop bound echoed.
    let out = stdout(&relcomp(&[
        "dquery",
        path_str,
        "0",
        "3",
        "2",
        "--samples",
        "1000",
        "--seed",
        "7",
    ]));
    assert!(out.contains("R_2(0, 3)"), "{out}");
    assert!(out.contains("K = 1000"), "{out}");

    // eps-adaptive dquery: stop reason and a ± half-width in the output.
    let out = stdout(&relcomp(&[
        "dquery",
        path_str,
        "0",
        "3",
        "4",
        "--eps",
        "0.2",
        "--samples",
        "30000",
        "--seed",
        "7",
    ]));
    assert!(
        out.contains("converged") || out.contains("max_samples"),
        "missing stop reason: {out}"
    );
    assert!(out.contains('±'), "missing half-width: {out}");

    // Bad values and unknown options are usage errors for both commands.
    let bad = relcomp(&["topk", path_str, "0", "--eps", "0"]);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("--eps must be a positive"));
    let unknown = relcomp(&["topk", path_str, "0", "--estimator", "mc"]);
    assert!(!unknown.status.success());
    let err = String::from_utf8_lossy(&unknown.stderr);
    assert!(err.contains("unknown option `--estimator`"), "{err}");
    assert!(err.contains("--eps"), "should list valid options: {err}");
    let unknown = relcomp(&["dquery", path_str, "0", "3", "2", "--k", "5"]);
    assert!(!unknown.status.success());
    let err = String::from_utf8_lossy(&unknown.stderr);
    assert!(err.contains("unknown option `--k`"), "{err}");
    let missing = relcomp(&["dquery", path_str, "0", "3"]);
    assert!(!missing.status.success());
    assert!(String::from_utf8_lossy(&missing.stderr).contains("dquery needs <file> <s> <t> <d>"));

    std::fs::remove_file(&path).ok();
}

#[test]
fn generate_stream_convert_and_v2_round_trip() {
    let v2 = temp_graph_path("stream.ug2");
    let v1 = temp_graph_path("stream.ugb");
    let txt = temp_graph_path("stream.txt");
    let (v2_str, v1_str, txt_str) = (
        v2.to_str().unwrap(),
        v1.to_str().unwrap(),
        txt.to_str().unwrap(),
    );

    // Stream a BA graph straight to the v2 binary.
    let out = stdout(&relcomp(&[
        "generate-stream",
        "ba",
        "--out",
        v2_str,
        "--nodes",
        "2000",
        "--attach",
        "3",
        "--seed",
        "9",
    ]));
    assert!(out.contains("wrote"), "{out}");
    assert!(out.contains("2000 nodes"), "{out}");

    // The v2 output must only land in .ug2 files.
    let bad = relcomp(&["generate-stream", "ba", "--out", txt_str, "--nodes", "100"]);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains(".ug2"));

    // stats reads v2 and reports the zero-copy load path.
    let stats = stdout(&relcomp(&["stats", v2_str]));
    assert!(stats.contains("binary-v2"), "{stats}");
    if cfg!(all(unix, target_endian = "little")) {
        assert!(stats.contains("via mmap"), "{stats}");
    }

    // Queries run directly against the mapped file, deterministically.
    // (Cut the trailing `[...; N ms]` bracket: wall time varies per run.)
    let query = |file: &str| {
        let out = stdout(&relcomp(&[
            "query",
            file,
            "7",
            "42",
            "--estimator",
            "mc",
            "--samples",
            "1000",
            "--seed",
            "3",
        ]));
        out.split('[').next().unwrap_or("").to_owned()
    };
    let from_v2 = query(v2_str);
    assert!(from_v2.contains("R(7, 42)"), "{from_v2}");

    // convert: v2 -> v1 -> text, each readable, all giving the same
    // estimate from the same seed.
    let out = stdout(&relcomp(&["convert", v2_str, v1_str]));
    assert!(out.contains("binary-v2"), "{out}");
    let out = stdout(&relcomp(&["convert", v1_str, txt_str]));
    assert!(out.contains("binary-v1"), "{out}");
    assert_eq!(query(v1_str), query(txt_str));
    assert_eq!(from_v2, query(v1_str));

    // And text converts back up to v2 (the migration path README
    // documents for v1 deployments).
    let out = stdout(&relcomp(&["convert", txt_str, v2_str]));
    assert!(out.contains("text"), "{out}");
    assert_eq!(from_v2, query(v2_str));

    for p in [&v2, &v1, &txt] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn bad_usage_exits_nonzero_with_usage() {
    let out = relcomp(&["no-such-command"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "stderr should carry usage: {err}");
}

#[test]
fn unknown_options_are_rejected_with_expected_list() {
    let path = temp_graph_path("flags.txt");
    let path_str = path.to_str().unwrap();
    stdout(&relcomp(&[
        "generate", "lastfm", "--out", path_str, "--scale", "0.02", "--seed", "1",
    ]));

    // A typo'd option must fail loudly, naming the valid ones.
    let out = relcomp(&[
        "query", path_str, "0", "3", "--sample", "100", "--seed", "1",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown option `--sample`"), "{err}");
    assert!(
        err.contains("--samples"),
        "should list valid options: {err}"
    );

    // Options from other commands are rejected too.
    let out = relcomp(&["stats", path_str, "--estimator", "mc"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown option `--estimator`"), "{err}");

    std::fs::remove_file(&path).ok();
}

#[test]
fn query_accepts_samples_flag() {
    let path = temp_graph_path("samples.txt");
    let path_str = path.to_str().unwrap();
    stdout(&relcomp(&[
        "generate", "lastfm", "--out", path_str, "--scale", "0.02", "--seed", "1",
    ]));
    let out = stdout(&relcomp(&[
        "query",
        path_str,
        "0",
        "3",
        "--estimator",
        "mc",
        "--samples",
        "1234",
        "--seed",
        "7",
    ]));
    assert!(
        out.contains("K = 1234"),
        "--samples should set the budget: {out}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn serve_and_client_round_trip() {
    use std::io::BufRead;

    let path = temp_graph_path("serve.txt");
    let path_str = path.to_str().unwrap();
    stdout(&relcomp(&[
        "generate", "lastfm", "--out", path_str, "--scale", "0.02", "--seed", "42",
    ]));

    // Port 0: the OS picks a free port and the banner line reports it.
    let mut server = Command::new(env!("CARGO_BIN_EXE_relcomp"))
        .args(["serve", path_str, "--port", "0", "--threads", "2"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("server starts");
    let banner = {
        let stdout = server.stdout.as_mut().expect("piped stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("banner line");
        line
    };
    let addr = banner
        .split(" on ")
        .nth(1)
        .and_then(|rest| rest.split(": ").next())
        .unwrap_or_else(|| panic!("unparsable banner: {banner}"))
        .to_owned();

    let query = |extra: &[&str]| {
        let mut args = vec!["client", "0", "3", "--addr", &addr];
        args.extend_from_slice(extra);
        stdout(&relcomp(&args))
    };

    let first = query(&["--estimator", "mc", "--samples", "500", "--seed", "7"]);
    assert!(first.contains("R(0, 3)"), "{first}");
    let second = query(&["--estimator", "mc", "--samples", "500", "--seed", "7"]);
    assert!(
        second.contains("cached"),
        "repeat should hit the cache: {second}"
    );
    // Identical estimates: cut each line at the bracket and compare.
    let estimate = |s: &str| s.split("   [").next().map(str::to_owned);
    assert_eq!(estimate(&first), estimate(&second));

    let stats = stdout(&relcomp(&["client", "stats", "--addr", &addr]));
    assert!(stats.contains("hit rate"), "{stats}");

    // The extension workloads ride the same connection machinery.
    let topk = stdout(&relcomp(&[
        "client",
        "topk",
        "0",
        "--k",
        "2",
        "--samples",
        "500",
        "--seed",
        "7",
        "--addr",
        &addr,
    ]));
    assert!(topk.contains("top-2 most reliable targets"), "{topk}");
    let dq = stdout(&relcomp(&[
        "client", "dquery", "0", "3", "2", "--eps", "0.3", "--seed", "7", "--addr", &addr,
    ]));
    assert!(dq.contains("R_2(0, 3)"), "{dq}");
    assert!(
        dq.contains("converged") || dq.contains("max_samples"),
        "client dquery must surface the stop reason: {dq}"
    );

    stdout(&relcomp(&["client", "shutdown", "--addr", &addr]));
    server.wait().expect("server exits after shutdown");
    std::fs::remove_file(&path).ok();
}
