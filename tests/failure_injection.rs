//! Failure-injection tests: malformed inputs, boundary conditions, and
//! misuse must fail loudly and precisely — never silently corrupt an
//! estimate.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use relcomp::prelude::*;
use relcomp_ugraph::io::read_graph;
use relcomp_ugraph::GraphError;
use std::sync::Arc;

#[test]
fn io_rejects_every_malformation() {
    let cases: Vec<(&str, &str)> = vec![
        ("", "missing header"),
        ("abc def\n", "non-numeric header"),
        ("3\n", "truncated header"),
        ("2 1\n0 1\n", "missing probability"),
        ("2 1\n0 1 nope\n", "non-numeric probability"),
        ("2 1\n0 1 0.0\n", "zero probability"),
        ("2 1\n0 1 1.5\n", "probability above one"),
        ("2 1\n0 5 0.5\n", "node out of range"),
        ("2 2\n0 1 0.5\n", "fewer edges than declared"),
        ("2 1\n0 1 0.5\n1 0 0.5\n", "more edges than declared"),
        ("2 2\n0 1 0.5\n0 1 0.6\n", "duplicate edge"),
    ];
    for (text, what) in cases {
        let result = read_graph(text.as_bytes());
        assert!(result.is_err(), "{what} should be rejected: {text:?}");
    }
}

#[test]
fn io_error_messages_carry_line_numbers() {
    let err = read_graph("2 1\n# fine\n0 1 bogus\n".as_bytes()).unwrap_err();
    match err {
        GraphError::Parse { line, message } => {
            assert_eq!(line, 3);
            assert!(message.contains("probability"));
        }
        other => panic!("expected parse error, got {other}"),
    }
}

#[test]
fn estimators_panic_on_out_of_range_queries() {
    let mut b = GraphBuilder::new(2);
    b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
    let g = Arc::new(b.build());
    let params = SuiteParams {
        bfs_sharing_worlds: 64,
        ..Default::default()
    };
    for kind in EstimatorKind::PAPER_SIX {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut est = build_estimator(kind, Arc::clone(&g), params, &mut rng);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            est.estimate(NodeId(0), NodeId(9), 16, &mut rng)
        }));
        assert!(
            result.is_err(),
            "{} accepted an invalid target",
            kind.display_name()
        );
    }
}

#[test]
fn estimators_panic_on_zero_samples() {
    let mut b = GraphBuilder::new(2);
    b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
    let g = Arc::new(b.build());
    let params = SuiteParams {
        bfs_sharing_worlds: 64,
        ..Default::default()
    };
    for kind in EstimatorKind::PAPER_SIX {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut est = build_estimator(kind, Arc::clone(&g), params, &mut rng);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            est.estimate(NodeId(0), NodeId(1), 0, &mut rng)
        }));
        assert!(result.is_err(), "{} accepted K = 0", kind.display_name());
    }
}

#[test]
fn builder_misuse_is_rejected() {
    // Out-of-range endpoints.
    let mut b = GraphBuilder::new(1);
    assert!(b.add_edge(NodeId(0), NodeId(1), 0.5).is_err());
    // Invalid probabilities at every boundary.
    let mut b = GraphBuilder::new(2);
    for p in [0.0, -0.5, 1.0 + 1e-9, f64::NAN, f64::INFINITY] {
        assert!(
            b.add_edge(NodeId(0), NodeId(1), p).is_err(),
            "accepted p = {p}"
        );
    }
}

#[test]
fn workload_on_degenerate_graphs() {
    // A graph with no 2-hop pairs yields an empty (not panicking)
    // workload.
    let mut b = GraphBuilder::new(4);
    b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
    b.add_edge(NodeId(2), NodeId(3), 0.5).unwrap();
    let g = b.build();
    let w = Workload::generate(&g, 5, 2, 1);
    assert!(w.is_empty());
}

#[test]
fn exact_oracle_refuses_oversized_graphs() {
    let mut b = GraphBuilder::new(30);
    for i in 0..28u32 {
        b.add_edge(NodeId(i), NodeId(i + 1), 0.5).unwrap();
    }
    let g = b.build();
    let result = std::panic::catch_unwind(|| {
        relcomp_core::exact::exact_reliability(&g, NodeId(0), NodeId(29))
    });
    assert!(result.is_err());
}

#[test]
fn bfs_sharing_refuses_k_beyond_index() {
    let mut b = GraphBuilder::new(2);
    b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
    let g = Arc::new(b.build());
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut est = relcomp_core::bfs_sharing::BfsSharing::new(g, 32, &mut rng);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        est.estimate(NodeId(0), NodeId(1), 33, &mut rng)
    }));
    assert!(result.is_err());
}

#[test]
fn estimates_stay_valid_under_extreme_probabilities() {
    // All-near-one and all-tiny graphs must keep estimates in [0, 1].
    for p in [1.0, 1e-6] {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), p).unwrap();
        b.add_edge(NodeId(1), NodeId(2), p).unwrap();
        b.add_edge(NodeId(2), NodeId(3), p).unwrap();
        let g = Arc::new(b.build());
        let params = SuiteParams {
            bfs_sharing_worlds: 256,
            ..Default::default()
        };
        for kind in EstimatorKind::PAPER_SIX {
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            let mut est = build_estimator(kind, Arc::clone(&g), params, &mut rng);
            let r = est.estimate(NodeId(0), NodeId(3), 256, &mut rng);
            assert!(
                r.is_valid(),
                "{} produced {r:?} at p = {p}",
                kind.display_name()
            );
            if p == 1.0 {
                assert_eq!(r.reliability, 1.0, "{}", kind.display_name());
            }
        }
    }
}
