//! Integration + property tests for the extension modules (bounds, paths,
//! top-k, distance-constrained queries, representative worlds).

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use relcomp::prelude::*;
use relcomp_core::bounds::{disjoint_paths_lower_bound, reliability_bounds};
use relcomp_core::distance_constrained::{
    distance_constrained_with, exact_distance_constrained, mc_distance_constrained,
};
use relcomp_core::exact::exact_reliability;
use relcomp_core::paths::most_reliable_path;
use relcomp_core::representative::{average_degree_world, degree_discrepancy, most_probable_world};
use relcomp_core::topk::{top_k_targets_indexed, top_k_targets_mc};
use relcomp_ugraph::generators::erdos_renyi;
use relcomp_ugraph::probmodel::{Direction, ProbModel};
use std::sync::Arc;

fn random_graph(seed: u64, n: usize, m: usize) -> UncertainGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let pairs = erdos_renyi(n, m, &mut rng);
    ProbModel::UniformChoice {
        choices: vec![0.2, 0.5, 0.8],
    }
    .apply(n, &pairs, Direction::RandomOriented, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// lower <= exact <= upper on random small digraphs.
    #[test]
    fn bounds_enclose_exact(seed in 0u64..500) {
        let g = random_graph(seed, 8, 12);
        prop_assume!(g.num_edges() <= 20);
        let (s, t) = (NodeId(0), NodeId(7));
        let exact = exact_reliability(&g, s, t);
        let b = reliability_bounds(&g, s, t, 8);
        prop_assert!(b.lower <= exact + 1e-9, "lower {} > exact {exact}", b.lower);
        prop_assert!(b.upper >= exact - 1e-9, "upper {} < exact {exact}", b.upper);
    }

    /// The most reliable path's probability is a lower bound, and matches
    /// the single-path disjoint bound.
    #[test]
    fn mrp_is_consistent_with_bounds(seed in 0u64..200) {
        let g = random_graph(seed, 8, 12);
        let (s, t) = (NodeId(0), NodeId(7));
        let single = disjoint_paths_lower_bound(&g, s, t, 1);
        match most_reliable_path(&g, s, t) {
            Some(p) => prop_assert!((p.probability - single).abs() < 1e-12),
            None => prop_assert_eq!(single, 0.0),
        }
    }

    /// Distance-constrained reliability is monotone in d and converges to
    /// the unconstrained value.
    #[test]
    fn distance_constrained_monotone(seed in 0u64..100) {
        let g = random_graph(seed, 7, 10);
        prop_assume!(g.num_edges() <= 18);
        let (s, t) = (NodeId(0), NodeId(6));
        let unconstrained = exact_reliability(&g, s, t);
        let mut prev = 0.0;
        for d in 0..=7 {
            let r = exact_distance_constrained(&g, s, t, d);
            prop_assert!(r >= prev - 1e-12);
            prev = r;
        }
        prop_assert!((prev - unconstrained).abs() < 1e-9);
    }

    /// Adaptive `R_d` sessions land within the reported Wilson half-width
    /// of the exact enumeration oracle. The budget runs at 99.9%
    /// confidence so that, over the deterministic proptest seeds, a
    /// correct interval essentially never excludes the truth.
    #[test]
    fn adaptive_distance_constrained_brackets_exact(seed in 0u64..300) {
        let g = random_graph(seed, 7, 10);
        prop_assume!(g.num_edges() <= 18);
        let (s, t) = (NodeId(0), NodeId(6));
        for d in [1usize, 2, 4] {
            let exact = exact_distance_constrained(&g, s, t, d);
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD15);
            let budget = SampleBudget::adaptive(0.05, 30_000).with_confidence(0.999);
            let est = distance_constrained_with(&g, s, t, d, &budget, &mut rng);
            prop_assert!(est.samples <= 30_000);
            let hw = est.half_width.expect("wilson CI");
            prop_assert!(
                (est.reliability - exact).abs() <= hw,
                "d={d}: {} vs exact {exact} outside half-width {hw} ({} samples, {:?})",
                est.reliability, est.samples, est.stop_reason
            );
        }
    }

    /// Top-k rankings from the parallel sharded path are bit-identical to
    /// the single-thread path for any thread count — fixed and adaptive
    /// budgets alike (the adaptive stopping decision happens at
    /// deterministic shard-group barriers).
    #[test]
    fn parallel_topk_is_thread_count_invariant(seed in 0u64..100, k in 1usize..6) {
        let g = Arc::new(random_graph(seed, 9, 16));
        let s = NodeId(0);
        let fixed = SampleBudget::fixed(2 * relcomp_core::parallel::SHARD_SAMPLES + 31);
        let adaptive = SampleBudget::adaptive(0.1, 20_000);
        for budget in [fixed, adaptive] {
            let baseline =
                ParallelSampler::new(Arc::clone(&g), 1).top_k_targets_with(s, k, &budget, seed);
            for threads in [2usize, 5, 8] {
                let got = ParallelSampler::new(Arc::clone(&g), threads)
                    .top_k_targets_with(s, k, &budget, seed);
                prop_assert_eq!(got.samples, baseline.samples);
                prop_assert_eq!(got.stop_reason, baseline.stop_reason);
                prop_assert_eq!(got.scores.len(), baseline.scores.len());
                for (a, b) in got.scores.iter().zip(&baseline.scores) {
                    prop_assert_eq!(a.node, b.node);
                    prop_assert_eq!(a.reliability.to_bits(), b.reliability.to_bits());
                }
            }
        }
    }

    /// Representative worlds are subsets of the edge set with valid
    /// structure, and ADR never loses to thresholding on degree
    /// discrepancy by more than numerical noise.
    #[test]
    fn representative_world_invariants(seed in 0u64..100) {
        let g = random_graph(seed, 10, 20);
        let thr = most_probable_world(&g);
        let adr = average_degree_world(&g);
        prop_assert!(thr.num_present() <= g.num_edges());
        prop_assert!(adr.num_present() <= g.num_edges());
        let d_adr = degree_discrepancy(&g, &adr);
        let d_thr = degree_discrepancy(&g, &thr);
        prop_assert!(d_adr <= d_thr + 1e-9,
            "ADR discrepancy {d_adr} worse than threshold {d_thr}");
    }
}

#[test]
fn topk_indexed_and_mc_agree_on_dataset_analog() {
    let g = std::sync::Arc::new(Dataset::LastFm.generate_with_scale(0.05, 17));
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let index = relcomp_core::bfs_sharing::BfsSharingIndex::build(&g, 4000, &mut rng);
    let s = NodeId(0);
    let indexed = top_k_targets_indexed(&g, &index, s, 10, 4000);
    let mc = top_k_targets_mc(&g, s, 10, 4000, &mut rng);
    assert!(!indexed.is_empty());
    // Rankings from two independent 4000-sample estimates: require
    // substantial overlap in the top-10 sets.
    let set: std::collections::HashSet<_> = indexed.iter().map(|t| t.node).collect();
    let overlap = mc.iter().filter(|t| set.contains(&t.node)).count();
    assert!(overlap >= 6, "only {overlap}/10 overlap");
}

#[test]
fn distance_constrained_mc_tracks_exact_on_random_graph() {
    let g = random_graph(3, 7, 10);
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    for d in [1usize, 2, 3] {
        let exact = exact_distance_constrained(&g, NodeId(0), NodeId(6), d);
        let mc = mc_distance_constrained(&g, NodeId(0), NodeId(6), d, 30_000, &mut rng);
        assert!((mc - exact).abs() < 0.02, "d={d}: {mc} vs {exact}");
    }
}

#[test]
fn bounds_width_shrinks_with_more_paths() {
    let g = Dataset::LastFm.generate_with_scale(0.05, 23);
    let w = Workload::generate(&g, 5, 2, 3);
    for &(s, t) in &w.pairs {
        let lo1 = disjoint_paths_lower_bound(&g, s, t, 1);
        let lo4 = disjoint_paths_lower_bound(&g, s, t, 4);
        assert!(lo4 >= lo1 - 1e-12);
    }
}
