//! End-to-end tests of the served extension workloads: a live TCP server
//! answering `topk` and `dquery` over the **raw** line-delimited JSON
//! protocol (hand-written request lines, no typed client), with every
//! answer checked against the exact enumeration oracles on graphs small
//! enough to enumerate (`m <= 26`). Covers the cache/epoch story too:
//! repeats hit the cache, an `update` that flips the ground truth makes
//! the next answer a cache miss that tracks the *new* truth.

use relcomp_core::distance_constrained::exact_distance_constrained;
use relcomp_core::exact::exact_reliability;
use relcomp_serve::engine::{EngineConfig, QueryEngine};
use relcomp_serve::protocol::Response;
use relcomp_serve::Server;
use relcomp_ugraph::{GraphBuilder, NodeId, UncertainGraph};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// s -> 1 (0.9), s -> 2 (0.5), 1 -> 3 (0.9): exact ranking from 0 is
/// 1 (0.9), 3 (0.81), 2 (0.5). Three edges — trivially enumerable.
fn star() -> UncertainGraph {
    let mut b = GraphBuilder::new(4);
    b.add_edge(NodeId(0), NodeId(1), 0.9).unwrap();
    b.add_edge(NodeId(0), NodeId(2), 0.5).unwrap();
    b.add_edge(NodeId(1), NodeId(3), 0.9).unwrap();
    b.build()
}

/// Direct edge 0 -> 2 (0.2) plus the two-hop detour 0 -> 1 -> 2 (0.9
/// each): `R_1(0, 2) = 0.2` while `R_2` sees the detour too.
fn detour() -> UncertainGraph {
    let mut b = GraphBuilder::new(3);
    b.add_edge(NodeId(0), NodeId(2), 0.2).unwrap();
    b.add_edge(NodeId(0), NodeId(1), 0.9).unwrap();
    b.add_edge(NodeId(1), NodeId(2), 0.9).unwrap();
    b.build()
}

fn start(graph: UncertainGraph) -> (std::net::SocketAddr, Arc<QueryEngine>) {
    let engine = Arc::new(QueryEngine::new(
        Arc::new(graph),
        EngineConfig {
            threads: 2,
            ..Default::default()
        },
    ));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&engine)).expect("bind");
    let (addr, _handle) = server.spawn().expect("spawn");
    (addr, engine)
}

/// A raw protocol session: hand-written JSON lines out, typed parses in.
struct RawClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl RawClient {
    fn connect(addr: std::net::SocketAddr) -> RawClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("timeout");
        let writer = stream.try_clone().expect("clone");
        RawClient {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn send(&mut self, line: &str) -> Response {
        self.writer.write_all(line.as_bytes()).expect("write");
        self.writer.write_all(b"\n").expect("write newline");
        self.writer.flush().expect("flush");
        let mut answer = String::new();
        self.reader.read_line(&mut answer).expect("read");
        serde_json::from_str(answer.trim_end())
            .unwrap_or_else(|e| panic!("unparsable response `{answer}`: {e}"))
    }
}

#[test]
fn topk_over_raw_json_matches_exact_and_tracks_updates() {
    let (addr, engine) = start(star());
    let mut client = RawClient::connect(addr);

    // Fresh answer: exact ranking 1 (0.9) > 3 (0.81) > 2 (0.5), each
    // score within MC noise of the enumeration oracle.
    let line = r#"{"cmd":"topk","s":0,"k":3,"samples":60000,"seed":7}"#;
    let Response::TopK(first) = client.send(line) else {
        panic!("expected a topk answer");
    };
    assert!(!first.cached);
    assert_eq!(first.stop_reason, "fixed_k");
    assert_eq!(first.samples, 60_000);
    let ranked: Vec<u32> = first.targets.iter().map(|t| t.node).collect();
    assert_eq!(ranked, vec![1, 3, 2]);
    let graph = engine.graph();
    for entry in &first.targets {
        let exact = exact_reliability(&graph, NodeId(0), NodeId(entry.node));
        assert!(
            (entry.reliability - exact).abs() < 0.01,
            "node {}: {} vs exact {exact}",
            entry.node,
            entry.reliability
        );
    }

    // The identical request replays from the cache bit for bit.
    let Response::TopK(second) = client.send(line) else {
        panic!("expected a topk answer");
    };
    assert!(second.cached, "repeat must hit the cache");
    assert_eq!(second.targets, first.targets);

    // Throttle 0 -> 1 to 0.05: the truth flips to 2 (0.5) > 1 (0.05) >
    // 3 (0.045). The epoch bump makes the same request a cache miss and
    // its answer must track the *new* exact oracle.
    let Response::Update(update) =
        client.send(r#"{"cmd":"update","updates":[{"s":0,"t":1,"prob":0.05}]}"#)
    else {
        panic!("expected an update answer");
    };
    assert_eq!(update.epoch, 1);
    let Response::TopK(after) = client.send(line) else {
        panic!("expected a topk answer");
    };
    assert!(!after.cached, "epoch bump must invalidate the topk answer");
    let ranked: Vec<u32> = after.targets.iter().map(|t| t.node).collect();
    assert_eq!(ranked, vec![2, 1, 3], "ranking must flip with the update");
    let graph = engine.graph();
    for entry in &after.targets {
        let exact = exact_reliability(&graph, NodeId(0), NodeId(entry.node));
        assert!(
            (entry.reliability - exact).abs() < 0.01,
            "node {} after update: {} vs exact {exact}",
            entry.node,
            entry.reliability
        );
    }

    client.send(r#"{"cmd":"shutdown"}"#);
}

#[test]
fn dquery_over_raw_json_matches_exact_and_tracks_updates() {
    let (addr, engine) = start(detour());
    let mut client = RawClient::connect(addr);

    // d = 1 counts only the direct edge: exactly 0.2 in truth.
    let line = r#"{"cmd":"dquery","s":0,"t":2,"d":1,"samples":60000,"seed":3}"#;
    let Response::DQuery(first) = client.send(line) else {
        panic!("expected a dquery answer");
    };
    assert!(!first.cached);
    assert_eq!((first.s, first.t, first.d), (0, 2, 1));
    let graph = engine.graph();
    let exact_d1 = exact_distance_constrained(&graph, NodeId(0), NodeId(2), 1);
    assert!((exact_d1 - 0.2).abs() < 1e-12, "oracle sanity");
    assert!(
        (first.reliability - exact_d1).abs() < 0.01,
        "{} vs exact {exact_d1}",
        first.reliability
    );

    // d = 2 admits the detour and is a *different cache key*: a fresh
    // computation matching its own oracle.
    let Response::DQuery(two_hop) =
        client.send(r#"{"cmd":"dquery","s":0,"t":2,"d":2,"samples":60000,"seed":3}"#)
    else {
        panic!("expected a dquery answer");
    };
    assert!(!two_hop.cached, "d is part of the cache key");
    let exact_d2 = exact_distance_constrained(&graph, NodeId(0), NodeId(2), 2);
    assert!(exact_d2 > exact_d1 + 0.5, "oracle sanity: monotone in d");
    assert!((two_hop.reliability - exact_d2).abs() < 0.01);

    // The d = 1 repeat replays from the cache.
    let Response::DQuery(second) = client.send(line) else {
        panic!("expected a dquery answer");
    };
    assert!(second.cached);
    assert_eq!(second.reliability.to_bits(), first.reliability.to_bits());

    // Raise the direct edge to 0.8: R_1 flips from 0.2 to 0.8. Cache
    // miss, answer tracks the new truth.
    let Response::Update(update) =
        client.send(r#"{"cmd":"update","updates":[{"s":0,"t":2,"prob":0.8}]}"#)
    else {
        panic!("expected an update answer");
    };
    assert_eq!(update.epoch, 1);
    let Response::DQuery(after) = client.send(line) else {
        panic!("expected a dquery answer");
    };
    assert!(
        !after.cached,
        "epoch bump must invalidate the dquery answer"
    );
    let graph = engine.graph();
    let exact_new = exact_distance_constrained(&graph, NodeId(0), NodeId(2), 1);
    assert!(
        (exact_new - 0.8).abs() < 1e-12,
        "oracle sanity after update"
    );
    assert!(
        (after.reliability - exact_new).abs() < 0.01,
        "{} vs new exact {exact_new}",
        after.reliability
    );

    client.send(r#"{"cmd":"shutdown"}"#);
}

#[test]
fn adaptive_extension_workloads_over_raw_json_report_sessions() {
    let (addr, engine) = start(star());
    let mut client = RawClient::connect(addr);

    // eps-adaptive topk: stops before the cap, certifies the boundary.
    let Response::TopK(topk) =
        client.send(r#"{"cmd":"topk","s":0,"k":2,"eps":0.05,"samples":200000,"seed":9}"#)
    else {
        panic!("expected a topk answer");
    };
    assert_eq!(topk.stop_reason, "converged");
    assert!(topk.samples < 200_000, "used {}", topk.samples);
    let hw = topk.half_width.expect("boundary CI on the wire");
    let boundary = topk.targets.last().expect("two targets").reliability;
    assert!(
        hw <= 0.05 * boundary + 1e-12,
        "hw {hw} vs boundary {boundary}"
    );

    // eps-adaptive dquery: converges and the reported interval brackets
    // the exact oracle (generous 3x slack — a single 95% interval).
    let Response::DQuery(dq) =
        client.send(r#"{"cmd":"dquery","s":0,"t":3,"d":2,"eps":0.05,"samples":200000,"seed":11}"#)
    else {
        panic!("expected a dquery answer");
    };
    assert_eq!(dq.stop_reason, "converged");
    assert!(dq.samples < 200_000);
    let exact = exact_distance_constrained(&engine.graph(), NodeId(0), NodeId(3), 2);
    let hw = dq.half_width.expect("wilson CI on the wire");
    assert!(
        (dq.reliability - exact).abs() <= 3.0 * hw,
        "{} vs exact {exact} (hw {hw})",
        dq.reliability
    );

    // Unknown-field-free malformed requests still answer with errors.
    let err = client.send(r#"{"cmd":"dquery","s":0,"t":3}"#);
    assert!(matches!(err, Response::Error(_)), "missing d must error");

    client.send(r#"{"cmd":"shutdown"}"#);
}
