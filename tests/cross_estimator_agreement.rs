//! Cross-crate integration tests: every estimator in the suite must agree
//! with the exact possible-world oracle on small graphs, and with each
//! other on medium graphs where enumeration is infeasible.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use relcomp::prelude::*;
use relcomp_core::exact::exact_reliability;
use relcomp_ugraph::generators::erdos_renyi;
use relcomp_ugraph::probmodel::{Direction, ProbModel};
use std::sync::Arc;

/// Small random digraphs where the exact oracle is feasible.
fn small_graphs() -> Vec<Arc<UncertainGraph>> {
    let mut graphs = Vec::new();
    for seed in 0..5u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let pairs = erdos_renyi(9, 11, &mut rng);
        let g = ProbModel::UniformChoice {
            choices: vec![0.2, 0.5, 0.8],
        }
        .apply(9, &pairs, Direction::RandomOriented, &mut rng);
        if g.num_edges() <= 24 {
            graphs.push(Arc::new(g));
        }
    }
    assert!(!graphs.is_empty());
    graphs
}

#[test]
fn all_estimators_agree_with_exact_oracle() {
    let params = SuiteParams {
        bfs_sharing_worlds: 60_000,
        ..Default::default()
    };
    for graph in small_graphs() {
        let (s, t) = (NodeId(0), NodeId(8));
        let exact = exact_reliability(&graph, s, t);
        for kind in EstimatorKind::PAPER_SIX {
            let mut rng = ChaCha8Rng::seed_from_u64(kind as u64 + 99);
            let mut est = build_estimator(kind, Arc::clone(&graph), params, &mut rng);
            // Recursive estimators: average over repeats to drive down
            // run-to-run variance; MC-family: one big-K run suffices.
            let (k, reps) = match kind {
                EstimatorKind::Rhh | EstimatorKind::Rss => (5_000, 20),
                EstimatorKind::BfsSharing => (60_000, 1),
                _ => (60_000, 1),
            };
            let mean: f64 = (0..reps)
                .map(|_| est.estimate(s, t, k, &mut rng).reliability)
                .sum::<f64>()
                / reps as f64;
            assert!(
                (mean - exact).abs() < 0.02,
                "{} on m={} graph: {mean} vs exact {exact}",
                kind.display_name(),
                graph.num_edges()
            );
        }
    }
}

#[test]
fn estimators_agree_pairwise_on_medium_graph() {
    // A graph too large for enumeration: use MC at large K as reference.
    let graph = Arc::new(Dataset::LastFm.generate_with_scale(0.08, 21));
    let workload = Workload::generate(&graph, 3, 2, 13);
    let params = SuiteParams {
        bfs_sharing_worlds: 20_000,
        ..Default::default()
    };

    for &(s, t) in &workload.pairs {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut mc = build_estimator(EstimatorKind::Mc, Arc::clone(&graph), params, &mut rng);
        let reference = mc.estimate(s, t, 20_000, &mut rng).reliability;
        for kind in [
            EstimatorKind::BfsSharing,
            EstimatorKind::ProbTree,
            EstimatorKind::LpPlus,
            EstimatorKind::Rhh,
            EstimatorKind::Rss,
            EstimatorKind::ProbTreeRss,
        ] {
            let mut rng = ChaCha8Rng::seed_from_u64(kind as u64 + 5);
            let mut est = build_estimator(kind, Arc::clone(&graph), params, &mut rng);
            let (k, reps) = match kind {
                EstimatorKind::Rhh | EstimatorKind::Rss | EstimatorKind::ProbTreeRss => (4_000, 10),
                _ => (20_000, 1),
            };
            let mean: f64 = (0..reps)
                .map(|_| est.estimate(s, t, k, &mut rng).reliability)
                .sum::<f64>()
                / reps as f64;
            assert!(
                (mean - reference).abs() < 0.03,
                "{} disagrees with MC on {s}->{t}: {mean} vs {reference}",
                kind.display_name()
            );
        }
    }
}

#[test]
fn lp_original_bias_is_visible_end_to_end() {
    // Fig. 5's phenomenon on a generated dataset: LP inflates reliability
    // relative to MC; LP+ does not.
    let graph = Arc::new(Dataset::Dblp005.generate_with_scale(0.005, 31));
    let workload = Workload::generate(&graph, 5, 2, 3);
    let params = SuiteParams::default();
    let mut diffs_lp = 0.0;
    let mut diffs_lpp = 0.0;
    for &(s, t) in &workload.pairs {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let mut mc = build_estimator(EstimatorKind::Mc, Arc::clone(&graph), params, &mut rng);
        let reference = mc.estimate(s, t, 8_000, &mut rng).reliability;
        let mut lp = build_estimator(
            EstimatorKind::LpOriginal,
            Arc::clone(&graph),
            params,
            &mut rng,
        );
        let mut lpp = build_estimator(EstimatorKind::LpPlus, Arc::clone(&graph), params, &mut rng);
        diffs_lp += lp.estimate(s, t, 8_000, &mut rng).reliability - reference;
        diffs_lpp += lpp.estimate(s, t, 8_000, &mut rng).reliability - reference;
    }
    assert!(
        diffs_lp > diffs_lpp + 0.01,
        "LP should inflate estimates vs LP+: lp {diffs_lp}, lp+ {diffs_lpp}"
    );
}

#[test]
fn indexed_estimators_report_resident_memory() {
    let graph = Arc::new(Dataset::LastFm.generate_with_scale(0.05, 3));
    let params = SuiteParams {
        bfs_sharing_worlds: 500,
        ..Default::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let bfss = build_estimator(
        EstimatorKind::BfsSharing,
        Arc::clone(&graph),
        params,
        &mut rng,
    );
    let pt = build_estimator(
        EstimatorKind::ProbTree,
        Arc::clone(&graph),
        params,
        &mut rng,
    );
    let mc = build_estimator(EstimatorKind::Mc, Arc::clone(&graph), params, &mut rng);
    assert!(bfss.resident_bytes() > pt.resident_bytes() / 10);
    assert!(pt.resident_bytes() > 0);
    // MC carries only its packed-sampling workspace — no offline index,
    // so it must stay far below the index-building estimators.
    assert!(mc.resident_bytes() < pt.resident_bytes());
    assert!(mc.resident_bytes() < bfss.resident_bytes());
}
