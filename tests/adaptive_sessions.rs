//! Property tests for adaptive estimation sessions: budget caps are
//! hard, fixed-`k` is bit-identical to the historical API, and reported
//! confidence intervals actually bracket the truth.

use proptest::prelude::*;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use relcomp::prelude::*;
use relcomp_core::exact::exact_reliability;
use relcomp_core::parallel::SHARD_SAMPLES;
use relcomp_core::sampler::coin;
use relcomp_core::session::DEFAULT_BATCH;
use relcomp_core::StopReason;
use relcomp_ugraph::traversal::{bfs_reaches, BfsWorkspace};
use std::sync::Arc;
use std::time::Duration;

/// Strategy: a random small digraph as (n, edge list) with valid probs.
fn small_digraph() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (4usize..9).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 0.05f64..1.0);
        (Just(n), proptest::collection::vec(edge, 1..14))
    })
}

fn build(n: usize, edges: &[(u32, u32, f64)]) -> UncertainGraph {
    let mut b = GraphBuilder::new(n).duplicate_policy(relcomp_ugraph::DuplicatePolicy::CombineOr);
    for &(u, v, p) in edges {
        if u != v {
            b.add_edge(NodeId(u), NodeId(v), p).unwrap();
        }
    }
    b.build()
}

/// The historical (pre-session) MC loop: `k` lazy-BFS possible worlds
/// from one RNG stream. `estimate_with(SampleBudget::fixed(k))` must
/// reproduce this bit for bit — same coin sequence, same hit fraction.
fn reference_mc(g: &UncertainGraph, s: NodeId, t: NodeId, k: usize, rng: &mut dyn RngCore) -> f64 {
    let mut ws = BfsWorkspace::new(g.num_nodes());
    let mut hits = 0usize;
    for _ in 0..k {
        if bfs_reaches(g, s, t, &mut ws, |e| coin(rng, g.prob(e).value())) {
            hits += 1;
        }
    }
    hits as f64 / k as f64
}

/// The historical (pre-session) top-k MC loop, verbatim from the seed
/// implementation: per-world lazy BFS counting every newly visited node,
/// then rank by hit fraction (descending, node-id tie-break).
fn reference_topk(
    g: &UncertainGraph,
    s: NodeId,
    k: usize,
    samples: usize,
    rng: &mut dyn RngCore,
) -> Vec<(NodeId, f64)> {
    use relcomp_ugraph::traversal::VisitSet;
    use std::collections::VecDeque;
    let n = g.num_nodes();
    let mut hits = vec![0u32; n];
    let mut visited = VisitSet::new(n);
    let mut queue = VecDeque::new();
    for _ in 0..samples {
        visited.reset();
        visited.insert(s);
        queue.clear();
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for (e, w) in g.out_edges(v) {
                if !visited.contains(w) && coin(rng, g.prob(e).value()) {
                    visited.insert(w);
                    hits[w.index()] += 1;
                    queue.push_back(w);
                }
            }
        }
    }
    let mut scores: Vec<(NodeId, f64)> = (0..n)
        .filter(|&i| hits[i] > 0)
        .map(|i| (NodeId::from_index(i), hits[i] as f64 / samples as f64))
        .collect();
    scores.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    scores.truncate(k);
    scores
}

/// The historical (pre-session) depth-bounded MC loop, verbatim from the
/// seed implementation: per-sample level-synchronous BFS with a hop cap.
fn reference_distance_constrained(
    g: &UncertainGraph,
    s: NodeId,
    t: NodeId,
    d: usize,
    k: usize,
    rng: &mut dyn RngCore,
) -> f64 {
    let bounded = |rng: &mut dyn RngCore| -> bool {
        if s == t {
            return true;
        }
        let n = g.num_nodes();
        let mut depth: Vec<Option<u32>> = vec![None; n];
        depth[s.index()] = Some(0);
        let mut frontier = vec![s];
        let mut next = Vec::new();
        let mut h = 0usize;
        while !frontier.is_empty() && h < d {
            h += 1;
            for &v in &frontier {
                for (e, w) in g.out_edges(v) {
                    if depth[w.index()].is_none() && coin(rng, g.prob(e).value()) {
                        if w == t {
                            return true;
                        }
                        depth[w.index()] = Some(h as u32);
                        next.push(w);
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
            next.clear();
        }
        false
    };
    let mut hits = 0usize;
    for _ in 0..k {
        if bounded(rng) {
            hits += 1;
        }
    }
    hits as f64 / k as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (a) Adaptive stopping never exceeds the sample cap, whatever the
    /// target, and always reports a consistent stop reason.
    #[test]
    fn adaptive_never_exceeds_max_samples(
        (n, edges) in small_digraph(),
        seed in 0u64..500,
        eps in 0.02f64..0.5,
        max in 300usize..3000,
    ) {
        let g = Arc::new(build(n, &edges));
        let (s, t) = (NodeId(0), NodeId((n - 1) as u32));
        let mut mc = McSampling::new(Arc::clone(&g));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let est = mc.estimate_with(s, t, &SampleBudget::adaptive(eps, max), &mut rng);
        prop_assert!(est.samples <= max, "consumed {} > cap {max}", est.samples);
        prop_assert!(est.samples > 0);
        prop_assert!(est.is_valid());
        match est.stop_reason {
            StopReason::Converged => {
                let hw = est.half_width.expect("bernoulli CI");
                prop_assert!(hw <= eps * est.reliability + 1e-12);
            }
            StopReason::MaxSamples => prop_assert_eq!(est.samples, max),
            other => prop_assert!(false, "unexpected stop reason {other:?}"),
        }
    }

    /// (a) A zero wall-time cap stops at the first batch barrier: exactly
    /// one batch is drawn, never the whole cap.
    #[test]
    fn time_cap_stops_at_first_barrier(
        (n, edges) in small_digraph(),
        seed in 0u64..200,
    ) {
        let g = Arc::new(build(n, &edges));
        let (s, t) = (NodeId(0), NodeId((n - 1) as u32));
        let mut mc = McSampling::new(Arc::clone(&g));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let budget = SampleBudget::fixed(100_000).with_time_limit(Duration::ZERO);
        let est = mc.estimate_with(s, t, &budget, &mut rng);
        prop_assert_eq!(est.samples, DEFAULT_BATCH);
        prop_assert_eq!(est.stop_reason, StopReason::TimeLimit);
    }

    /// (b) `estimate_with(SampleBudget::fixed(k))` is bit-identical to
    /// the historical MC loop: same RNG stream, same hit fraction.
    #[test]
    fn fixed_budget_mc_matches_historical_stream(
        (n, edges) in small_digraph(),
        seed in 0u64..500,
        k in 1usize..4000,
    ) {
        let g = Arc::new(build(n, &edges));
        let (s, t) = (NodeId(0), NodeId((n - 1) as u32));
        let mut reference_rng = ChaCha8Rng::seed_from_u64(seed);
        let reference = reference_mc(&g, s, t, k, &mut reference_rng);
        let mut mc = McSampling::new(Arc::clone(&g));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let est = mc.estimate_with(s, t, &SampleBudget::fixed(k), &mut rng);
        prop_assert_eq!(est.reliability.to_bits(), reference.to_bits());
        prop_assert_eq!(est.samples, k);
        prop_assert_eq!(est.stop_reason, StopReason::FixedK);
        // And the wrapper is the same call.
        let mut mc2 = McSampling::new(Arc::clone(&g));
        let mut rng2 = ChaCha8Rng::seed_from_u64(seed);
        let wrapped = mc2.estimate(s, t, k, &mut rng2);
        prop_assert_eq!(wrapped.reliability.to_bits(), est.reliability.to_bits());
    }

    /// (b) BFS-Sharing: identically seeded construction + fixed budget
    /// reproduces the historical single-fixpoint answer bit for bit.
    #[test]
    fn fixed_budget_bfs_sharing_matches_historical(
        (n, edges) in small_digraph(),
        seed in 0u64..200,
        k in 1usize..1024,
    ) {
        let g = Arc::new(build(n, &edges));
        let (s, t) = (NodeId(0), NodeId((n - 1) as u32));
        let l = 1024usize;
        let mut rng_a = ChaCha8Rng::seed_from_u64(seed);
        let mut bs_a = BfsSharing::new(Arc::clone(&g), l, &mut rng_a);
        let a = bs_a.estimate(s, t, k, &mut rng_a);
        let mut rng_b = ChaCha8Rng::seed_from_u64(seed);
        let mut bs_b = BfsSharing::new(Arc::clone(&g), l, &mut rng_b);
        let b = bs_b.estimate_with(s, t, &SampleBudget::fixed(k), &mut rng_b);
        prop_assert_eq!(a.reliability.to_bits(), b.reliability.to_bits());
        prop_assert_eq!(a.samples, b.samples);
    }

    /// (b) Parallel MC under a fixed budget is bit-identical for any
    /// thread count, and identical to the plain fixed-k entry point.
    #[test]
    fn parallel_fixed_budget_thread_invariant(
        (n, edges) in small_digraph(),
        seed in 0u64..200,
        extra in 0usize..300,
    ) {
        let g = Arc::new(build(n, &edges));
        let (s, t) = (NodeId(0), NodeId((n - 1) as u32));
        let k = 2 * SHARD_SAMPLES + 1 + extra;
        let budget = SampleBudget::fixed(k);
        let baseline = ParallelSampler::new(Arc::clone(&g), 1).estimate_mc(s, t, k, seed);
        for threads in [1usize, 2, 8] {
            let est = ParallelSampler::new(Arc::clone(&g), threads)
                .estimate_mc_with(s, t, &budget, seed);
            prop_assert_eq!(est.reliability.to_bits(), baseline.reliability.to_bits());
            prop_assert_eq!(est.samples, k);
        }
    }

    /// (b) `top_k_targets_with(SampleBudget::fixed(n))` — and therefore
    /// the `top_k_targets_mc` wrapper — is bit-identical to the
    /// historical pre-session top-k loop: same coin stream, same hit
    /// counts, same ranking.
    #[test]
    fn fixed_budget_topk_matches_historical_loop(
        (n, edges) in small_digraph(),
        seed in 0u64..300,
        samples in 1usize..2000,
        k in 1usize..6,
    ) {
        let g = build(n, &edges);
        let s = NodeId(0);
        let mut reference_rng = ChaCha8Rng::seed_from_u64(seed);
        let reference = reference_topk(&g, s, k, samples, &mut reference_rng);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let session = relcomp_core::topk::top_k_targets_with(
            &g, s, k, &SampleBudget::fixed(samples), &mut rng);
        prop_assert_eq!(session.samples, samples);
        prop_assert_eq!(session.stop_reason, StopReason::FixedK);
        prop_assert_eq!(session.scores.len(), reference.len());
        for (got, want) in session.scores.iter().zip(&reference) {
            prop_assert_eq!(got.node, want.0);
            prop_assert_eq!(got.reliability.to_bits(), want.1.to_bits());
        }
        // The wrapper is the same call.
        let mut rng2 = ChaCha8Rng::seed_from_u64(seed);
        let wrapped = relcomp_core::topk::top_k_targets_mc(&g, s, k, samples, &mut rng2);
        prop_assert_eq!(wrapped, session.scores);
    }

    /// (b) `distance_constrained_with(SampleBudget::fixed(k))` — and
    /// therefore the `mc_distance_constrained` wrapper — is bit-identical
    /// to the historical pre-session depth-bounded loop.
    #[test]
    fn fixed_budget_distance_constrained_matches_historical_loop(
        (n, edges) in small_digraph(),
        seed in 0u64..300,
        k in 1usize..2000,
        d in 0usize..6,
    ) {
        let g = build(n, &edges);
        let (s, t) = (NodeId(0), NodeId((n - 1) as u32));
        let mut reference_rng = ChaCha8Rng::seed_from_u64(seed);
        let reference = reference_distance_constrained(&g, s, t, d, k, &mut reference_rng);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let est = relcomp_core::distance_constrained::distance_constrained_with(
            &g, s, t, d, &SampleBudget::fixed(k), &mut rng);
        prop_assert_eq!(est.reliability.to_bits(), reference.to_bits());
        prop_assert_eq!(est.samples, k);
        prop_assert_eq!(est.stop_reason, StopReason::FixedK);
        let mut rng2 = ChaCha8Rng::seed_from_u64(seed);
        let wrapped = relcomp_core::distance_constrained::mc_distance_constrained(
            &g, s, t, d, k, &mut rng2);
        prop_assert_eq!(wrapped.to_bits(), est.reliability.to_bits());
    }

    /// Adaptive parallel MC is also thread-count invariant: convergence
    /// is checked at deterministic shard-group barriers.
    #[test]
    fn parallel_adaptive_thread_invariant(
        (n, edges) in small_digraph(),
        seed in 0u64..100,
    ) {
        let g = Arc::new(build(n, &edges));
        let (s, t) = (NodeId(0), NodeId((n - 1) as u32));
        let budget = SampleBudget::adaptive(0.05, 20_000);
        let baseline =
            ParallelSampler::new(Arc::clone(&g), 1).estimate_mc_with(s, t, &budget, seed);
        for threads in [2usize, 8] {
            let est = ParallelSampler::new(Arc::clone(&g), threads)
                .estimate_mc_with(s, t, &budget, seed);
            prop_assert_eq!(est.reliability.to_bits(), baseline.reliability.to_bits());
            prop_assert_eq!(est.samples, baseline.samples);
            prop_assert_eq!(est.stop_reason, baseline.stop_reason);
        }
    }
}

/// (c) The reported half-width brackets the exact reliability at the
/// stated confidence. Deterministic seeds: coverage is checked across
/// many (graph, seed) runs rather than per-run (a 95% interval is
/// allowed to miss 5% of the time).
#[test]
fn half_width_brackets_exact_reliability() {
    let mut covered = 0usize;
    let mut total = 0usize;
    for seed in 0u64..30 {
        let mut gen_rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC0FFEE);
        // Random 5-node digraphs small enough for the exact oracle.
        let n = 5usize;
        let mut b =
            GraphBuilder::new(n).duplicate_policy(relcomp_ugraph::DuplicatePolicy::CombineOr);
        for _ in 0..8 {
            let u = (gen_rng.next_u32() % n as u32, gen_rng.next_u32() % n as u32);
            if u.0 != u.1 {
                let p = 0.15 + 0.8 * (gen_rng.next_u32() as f64 / u32::MAX as f64);
                b.add_edge(NodeId(u.0), NodeId(u.1), p.min(1.0)).unwrap();
            }
        }
        let g = Arc::new(b.build());
        let (s, t) = (NodeId(0), NodeId(4));
        let exact = exact_reliability(&g, s, t);

        let mut mc = McSampling::new(Arc::clone(&g));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let est = mc.estimate_with(s, t, &SampleBudget::adaptive(0.05, 20_000), &mut rng);
        let hw = est.half_width.expect("bernoulli CI");
        total += 1;
        if (est.reliability - exact).abs() <= hw {
            covered += 1;
        }
    }
    // 95% nominal coverage; demand at least 80% over 30 deterministic
    // runs (binomial p < 1e-2 of a correct interval failing this).
    assert!(
        covered * 5 >= total * 4,
        "coverage {covered}/{total} below 80%"
    );
}

/// (c) Same bracketing through the ProbTree + session path (the CI is
/// computed by the inner estimator over the extracted query graph).
#[test]
fn probtree_session_half_width_brackets_exact() {
    let mut covered = 0usize;
    let mut total = 0usize;
    for seed in 0u64..15 {
        let mut b = GraphBuilder::new(4);
        let mut gen_rng = ChaCha8Rng::seed_from_u64(seed ^ 0xBEEF);
        let mut p = || 0.2 + 0.75 * (gen_rng.next_u32() as f64 / u32::MAX as f64);
        b.add_edge(NodeId(0), NodeId(1), p()).unwrap();
        b.add_edge(NodeId(0), NodeId(2), p()).unwrap();
        b.add_edge(NodeId(1), NodeId(3), p()).unwrap();
        b.add_edge(NodeId(2), NodeId(3), p()).unwrap();
        let g = Arc::new(b.build());
        let (s, t) = (NodeId(0), NodeId(3));
        let exact = exact_reliability(&g, s, t);

        let mut pt = ProbTree::new(Arc::clone(&g));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let est = pt.estimate_with(s, t, &SampleBudget::adaptive(0.05, 20_000), &mut rng);
        let hw = est.half_width.expect("inner MC reports a CI");
        total += 1;
        if (est.reliability - exact).abs() <= hw {
            covered += 1;
        }
    }
    assert!(
        covered * 5 >= total * 4,
        "coverage {covered}/{total} below 80%"
    );
}

/// Fixed recursion (single run) reports no CI; adaptive recursion does.
#[test]
fn recursive_sessions_report_ci_only_with_replication() {
    let mut b = GraphBuilder::new(4);
    b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
    b.add_edge(NodeId(0), NodeId(2), 0.6).unwrap();
    b.add_edge(NodeId(1), NodeId(3), 0.7).unwrap();
    b.add_edge(NodeId(2), NodeId(3), 0.4).unwrap();
    let g = Arc::new(b.build());
    let mut rss = RecursiveStratified::new(Arc::clone(&g));
    let mut rng = ChaCha8Rng::seed_from_u64(1);

    let fixed = rss.estimate(NodeId(0), NodeId(3), 1000, &mut rng);
    assert_eq!(fixed.stop_reason, StopReason::FixedK);
    assert!(fixed.half_width.is_none(), "single run has no spread");

    let adaptive = rss.estimate_with(
        NodeId(0),
        NodeId(3),
        &SampleBudget::adaptive(0.05, 50_000),
        &mut rng,
    );
    assert!(adaptive.half_width.is_some(), "batched runs measure spread");
    assert!(adaptive.samples <= 50_000);
}
